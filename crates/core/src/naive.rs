//! Naive pricing evaluation: run the query on every support instance
//! (Algorithms 1 and 2 verbatim), plus Appendix A's *instance reduction*
//! optimization of that baseline.

use crate::engine::{bag_fp, combine_bundle};
use crate::normal_form::{Prepared, Shape};
use crate::update::SupportUpdate;
use qirana_sqlengine::update::apply_writes;
use qirana_sqlengine::{execute, Database, EngineError, ExecBudget, ExecContext, Fingerprint, Row};
use std::collections::{BTreeMap, HashMap};

/// Per-update naive disagreement bits over a neighborhood support set.
///
/// Every query execution — the base run and each per-instance re-run —
/// happens under `budget`; a trip surfaces as
/// [`EngineError::BudgetExceeded`] with the database already rolled back.
pub fn disagreements_nbrs(
    db: &mut Database,
    q: &Prepared,
    updates: &[SupportUpdate],
    active: &[bool],
    budget: ExecBudget,
) -> Result<Vec<bool>, EngineError> {
    let refs = q.referenced_tables();
    let base = bag_fp(execute(&q.plan, &ExecContext::new(db).with_budget(budget))?);
    let mut bits = vec![false; updates.len()];
    for (i, up) in updates.iter().enumerate() {
        if !active[i] || !refs.contains(&up.table()) {
            continue;
        }
        let undo = up.apply(db);
        let fp = execute(&q.plan, &ExecContext::new(db).with_budget(budget)).map(bag_fp);
        apply_writes(db, &undo);
        bits[i] = fp? != base;
    }
    Ok(bits)
}

/// Naive disagreement bits over a uniform support set (whole databases).
pub fn disagreements_uniform(
    db: &Database,
    q: &Prepared,
    worlds: &[Database],
    active: &[bool],
    budget: ExecBudget,
) -> Result<Vec<bool>, EngineError> {
    let base = bag_fp(execute(&q.plan, &ExecContext::new(db).with_budget(budget))?);
    let mut bits = vec![false; worlds.len()];
    for (i, world) in worlds.iter().enumerate() {
        if !active[i] {
            continue;
        }
        let fp = bag_fp(execute(
            &q.plan,
            &ExecContext::new(world).with_budget(budget),
        )?);
        bits[i] = fp != base;
    }
    Ok(bits)
}

/// Bundle output fingerprints per neighborhood instance (Algorithm 2's
/// dictionary keys).
///
/// An update touching a relation the bundle never references cannot change
/// any member's output, so its instance fingerprints as the base — computed
/// once and reused instead of re-executing the bundle (mirroring the
/// unreferenced-relation short-circuit in [`disagreements_nbrs`]).
pub fn partition_nbrs(
    db: &mut Database,
    bundle: &[&Prepared],
    updates: &[SupportUpdate],
    budget: ExecBudget,
) -> Result<Vec<Fingerprint>, EngineError> {
    let refs = bundle_refs(bundle);
    let mut base: Option<Fingerprint> = None;
    let mut out = Vec::with_capacity(updates.len());
    for up in updates {
        if !refs.contains(&up.table()) {
            let fp = match base {
                Some(fp) => fp,
                None => {
                    let fp = bundle_fps(db, bundle, budget)?;
                    base = Some(fp);
                    fp
                }
            };
            out.push(fp);
            continue;
        }
        let undo = up.apply(db);
        let fps = bundle_fps(db, bundle, budget);
        apply_writes(db, &undo);
        out.push(fps?);
    }
    Ok(out)
}

/// Union of the relations referenced by any bundle member.
pub(crate) fn bundle_refs(bundle: &[&Prepared]) -> std::collections::HashSet<usize> {
    bundle.iter().flat_map(|q| q.referenced_tables()).collect()
}

/// A single query's output fingerprint per neighborhood instance — the
/// memoizable building block of [`partition_nbrs`]: folding the per-query
/// vectors of a bundle's members instance-by-instance with
/// [`combine_bundle`] reproduces the bundle fingerprints bitwise, because
/// an update that leaves a member's referenced tables untouched cannot
/// change that member's output (its fingerprint *is* the base, whether
/// short-circuited or executed).
pub fn query_fps_nbrs(
    db: &mut Database,
    q: &Prepared,
    updates: &[SupportUpdate],
    budget: ExecBudget,
) -> Result<Vec<Fingerprint>, EngineError> {
    let refs = q.referenced_tables();
    let base = bag_fp(execute(&q.plan, &ExecContext::new(db).with_budget(budget))?);
    let mut out = Vec::with_capacity(updates.len());
    for up in updates {
        if !refs.contains(&up.table()) {
            out.push(base);
            continue;
        }
        let undo = up.apply(db);
        let fp = execute(&q.plan, &ExecContext::new(db).with_budget(budget)).map(bag_fp);
        apply_writes(db, &undo);
        out.push(fp?);
    }
    Ok(out)
}

/// A single query's output fingerprint per uniform world (the per-query
/// counterpart of [`partition_uniform`]).
pub fn query_fps_uniform(
    q: &Prepared,
    worlds: &[Database],
    budget: ExecBudget,
) -> Result<Vec<Fingerprint>, EngineError> {
    worlds
        .iter()
        .map(|w| {
            Ok(bag_fp(execute(
                &q.plan,
                &ExecContext::new(w).with_budget(budget),
            )?))
        })
        .collect()
}

/// Bundle output fingerprints per uniform instance.
pub fn partition_uniform(
    _db: &Database,
    bundle: &[&Prepared],
    worlds: &[Database],
    budget: ExecBudget,
) -> Result<Vec<Fingerprint>, EngineError> {
    worlds
        .iter()
        .map(|w| bundle_fps_ref(w, bundle, budget))
        .collect()
}

fn bundle_fps(
    db: &Database,
    bundle: &[&Prepared],
    budget: ExecBudget,
) -> Result<Fingerprint, EngineError> {
    bundle_fps_ref(db, bundle, budget)
}

fn bundle_fps_ref(
    db: &Database,
    bundle: &[&Prepared],
    budget: ExecBudget,
) -> Result<Fingerprint, EngineError> {
    let mut fps = Vec::with_capacity(bundle.len());
    for q in bundle {
        fps.push(bag_fp(execute(
            &q.plan,
            &ExecContext::new(db).with_budget(budget),
        )?));
    }
    Ok(combine_bundle(&fps))
}

/// Instance reduction (Appendix A, Lemma A.3): for an SPJ query, the
/// disagreement verdict of an update touching relation `R` is unchanged if
/// `R` is first restricted to just the tuples the support set touches. The
/// naive loop then runs over a much smaller relation.
///
/// Implemented with table overrides — no copy of the full database is made;
/// only the touched rows of each relation are materialized.
pub fn reduced_disagreements(
    db: &Database,
    q: &Prepared,
    updates: &[SupportUpdate],
    active: &[bool],
    budget: ExecBudget,
) -> Result<Vec<bool>, EngineError> {
    // Callers route non-SPJ shapes through the full-execution path;
    // reaching here with one is a caller bug — but a routing bug must
    // degrade to a typed error the broker can fall back from (priced
    // slower via full execution), never a crash mid-purchase.
    let Shape::Spj(shape) = &q.shape else {
        return Err(EngineError::Eval(
            "instance reduction requires an SPJ shape".into(),
        ));
    };
    let mut bits = vec![false; updates.len()];

    // Group updates by touched relation (ignoring relations not in the
    // query, which trivially agree).
    // BTreeMap: iterated below; process relations in table order so
    // the probe sequence (and any budget cutoff) is deterministic.
    let mut by_rel: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, up) in updates.iter().enumerate() {
        if !active[i] {
            continue;
        }
        if shape.relations.iter().any(|r| r.table == up.table()) {
            by_rel.entry(up.table()).or_default().push(i);
        }
    }

    for (table, idxs) in by_rel {
        // Collect the touched row indices of this relation, in order.
        let mut touched: Vec<usize> = idxs
            .iter()
            .flat_map(|&i| match &updates[i] {
                SupportUpdate::Row { row, .. } => vec![*row],
                SupportUpdate::Swap { row_a, row_b, .. } => vec![*row_a, *row_b],
            })
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let remap: HashMap<usize, usize> = touched
            .iter()
            .enumerate()
            .map(|(new, &orig)| (orig, new))
            .collect();
        let mut reduced: Vec<Row> = touched
            .iter()
            .map(|&r| db.table_at(table).rows[r].clone())
            .collect();

        // Base fingerprint on the reduced instance.
        let base = {
            let ctx = ExecContext::with_override(db, table, &reduced).with_budget(budget);
            bag_fp(execute(&q.plan, &ctx)?)
        };

        for &i in &idxs {
            // Apply the update to the reduced rows in place.
            let restore: Vec<(usize, usize, qirana_sqlengine::Value)>;
            match &updates[i] {
                SupportUpdate::Row { row, changes, .. } => {
                    let r = remap[row];
                    restore = changes
                        .iter()
                        .map(|(c, v)| {
                            let old = std::mem::replace(&mut reduced[r][*c], v.clone());
                            (r, *c, old)
                        })
                        .collect();
                }
                SupportUpdate::Swap {
                    row_a, row_b, cols, ..
                } => {
                    let (a, b) = (remap[row_a], remap[row_b]);
                    let mut saved = Vec::with_capacity(cols.len() * 2);
                    for &c in cols {
                        saved.push((a, c, reduced[a][c].clone()));
                        saved.push((b, c, reduced[b][c].clone()));
                        let tmp = reduced[a][c].clone();
                        reduced[a][c] = reduced[b][c].clone();
                        reduced[b][c] = tmp;
                    }
                    restore = saved;
                }
            }
            let fp = {
                let ctx = ExecContext::with_override(db, table, &reduced).with_budget(budget);
                bag_fp(execute(&q.plan, &ctx)?)
            };
            for (r, c, v) in restore.into_iter().rev() {
                reduced[r][c] = v;
            }
            bits[i] = fp != base;
        }
    }
    Ok(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal_form::prepare_query;
    use crate::support::{generate_support, generate_uniform_worlds, SupportConfig};
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("grp", DataType::Str),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            (0..20i64)
                .map(|i| {
                    vec![
                        i.into(),
                        if i % 2 == 0 { "a" } else { "b" }.into(),
                        (i * 3).into(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        db
    }

    #[test]
    fn reduction_matches_plain_naive() {
        let mut database = db();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 200,
                ..Default::default()
            },
        );
        let active = vec![true; updates.len()];
        for sql in [
            "select v from T where grp = 'a'",
            "select id, grp from T where v > 12",
            "select * from T",
        ] {
            let q = prepare_query(&database, sql).unwrap();
            let plain =
                disagreements_nbrs(&mut database, &q, &updates, &active, ExecBudget::UNLIMITED)
                    .unwrap();
            let reduced =
                reduced_disagreements(&database, &q, &updates, &active, ExecBudget::UNLIMITED)
                    .unwrap();
            assert_eq!(plain, reduced, "reduction changed verdicts for {sql}");
        }
    }

    #[test]
    fn reduction_on_non_spj_shape_is_a_typed_error() {
        // Routing an aggregate (non-SPJ) query here used to panic; it must
        // now surface as a recoverable EngineError so callers can fall back
        // to full execution.
        let mut database = db();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 10,
                ..Default::default()
            },
        );
        let active = vec![true; updates.len()];
        let q = prepare_query(&database, "select grp, sum(v) from T group by grp").unwrap();
        let err = reduced_disagreements(&database, &q, &updates, &active, ExecBudget::UNLIMITED)
            .unwrap_err();
        assert!(matches!(err, EngineError::Eval(_)), "got {err:?}");
        // The same query still prices through the full-execution path.
        disagreements_nbrs(&mut database, &q, &updates, &active, ExecBudget::UNLIMITED).unwrap();
    }

    #[test]
    fn uniform_worlds_mostly_disagree_on_touching_queries() {
        let database = db();
        let worlds = generate_uniform_worlds(&database, 20, 3);
        let q = prepare_query(&database, "select grp, v from T").unwrap();
        let bits = disagreements_uniform(
            &database,
            &q,
            &worlds,
            &vec![true; worlds.len()],
            ExecBudget::UNLIMITED,
        )
        .unwrap();
        let frac = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!(
            frac > 0.9,
            "a uniformly random world almost surely differs: {frac}"
        );
    }

    #[test]
    fn partition_skips_unreferenced_tables() {
        // A bundle over T only; updates touch both T and an unrelated
        // table U. Unreferenced-table instances must fingerprint exactly
        // as the brute-force apply-execute-undo loop says (the base).
        let mut database = db();
        database.add_table(
            TableSchema::new(
                "U",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("w", DataType::Int),
                ],
                &["id"],
            ),
            (0..10i64)
                .map(|i| vec![i.into(), (i * 7).into()])
                .collect::<Vec<_>>(),
        );
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 120,
                ..Default::default()
            },
        );
        assert!(
            updates.iter().any(|u| u.table() == 1),
            "support must touch U for this test to bite"
        );
        let q = prepare_query(&database, "select grp, v from T where v > 9").unwrap();
        let fast = partition_nbrs(&mut database, &[&q], &updates, ExecBudget::UNLIMITED).unwrap();
        // Brute force: always apply and re-execute.
        let mut brute = Vec::with_capacity(updates.len());
        for up in &updates {
            let undo = up.apply(&mut database);
            let fp = bundle_fps(&database, &[&q], ExecBudget::UNLIMITED);
            apply_writes(&mut database, &undo);
            brute.push(fp.unwrap());
        }
        assert_eq!(fast, brute, "skip path changed partition fingerprints");
    }

    #[test]
    fn per_query_fps_fold_to_bundle_partition() {
        // The cache's reconstruction identity: folding per-query fingerprint
        // vectors instance-by-instance must equal the monolithic bundle
        // partition bitwise — including instances whose update touches a
        // table only one member (or no member) references.
        let mut database = db();
        database.add_table(
            TableSchema::new(
                "U",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("w", DataType::Int),
                ],
                &["id"],
            ),
            (0..10i64)
                .map(|i| vec![i.into(), (i * 7).into()])
                .collect::<Vec<_>>(),
        );
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 150,
                ..Default::default()
            },
        );
        let q1 = prepare_query(&database, "select count(*) from T where v > 30").unwrap();
        let q2 = prepare_query(&database, "select w from U where w > 14").unwrap();
        let bundle = [&q1, &q2];
        let whole =
            partition_nbrs(&mut database, &bundle, &updates, ExecBudget::UNLIMITED).unwrap();
        let f1 = query_fps_nbrs(&mut database, &q1, &updates, ExecBudget::UNLIMITED).unwrap();
        let f2 = query_fps_nbrs(&mut database, &q2, &updates, ExecBudget::UNLIMITED).unwrap();
        let folded: Vec<Fingerprint> = (0..updates.len())
            .map(|i| combine_bundle(&[f1[i], f2[i]]))
            .collect();
        assert_eq!(whole, folded, "per-query fold diverged from bundle path");
    }

    #[test]
    fn partition_refines_disagreements() {
        let mut database = db();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 100,
                ..Default::default()
            },
        );
        let q = prepare_query(&database, "select count(*) from T where v > 30").unwrap();
        let active = vec![true; updates.len()];
        let bits = disagreements_nbrs(&mut database, &q, &updates, &active, ExecBudget::UNLIMITED)
            .unwrap();
        let fps = partition_nbrs(&mut database, &[&q], &updates, ExecBudget::UNLIMITED).unwrap();
        let base = {
            let out = execute(&q.plan, &ExecContext::new(&database)).unwrap();
            combine_bundle(&[bag_fp(out)])
        };
        for i in 0..bits.len() {
            assert_eq!(
                bits[i],
                fps[i] != base,
                "bit {i} inconsistent with partition"
            );
        }
    }
}
