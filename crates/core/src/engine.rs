//! Pricing-engine orchestration.
//!
//! A pricing call reduces to one of two primitives over the support set:
//!
//! * [`bundle_disagreements`] — for the coverage-family functions: one bit
//!   per support instance, "does the bundle's output change on `Dᵢ`?"
//!   (Algorithm 1 / 3). This is where §4's optimizations apply.
//! * [`bundle_partition`] — for the entropy-family functions: the bundle
//!   output fingerprint per instance (Algorithm 2). This inherently
//!   requires the queries' outputs per instance — the paper's reason
//!   weighted coverage is the recommended default — but the incremental
//!   evaluator ([`crate::delta`]) now derives those outputs from memoized
//!   base state for SPJ/aggregate shapes instead of re-executing, falling
//!   back to full per-instance execution everywhere else.

use crate::cache::{CacheConfig, PricingCache};
use crate::delta::{self, DeltaState, ProbeStats};
use crate::fault;
use crate::naive;
use crate::normal_form::{Prepared, Shape};
use crate::optimized;
use crate::parallel::{self, Parallelism};
use crate::support::SupportSet;
use crate::telemetry::{Stage, Telemetry};
use crate::update::SupportUpdate;
use qirana_sqlengine::{Database, EngineError, ExecBudget, Fingerprint, QueryOutput};
use std::sync::Arc;

/// Engine knobs mirroring the paper's evaluated configurations, plus the
/// execution budget every pricing query runs under.
///
/// Carries the [`Telemetry`] handle, so the struct is `Clone` (an `Arc`
/// bump) but no longer `Copy`; engine entry points take it by reference.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Use the §4.1 static/dynamic disagreement checks instead of
    /// re-executing the query per support instance.
    pub optimize: bool,
    /// Batch the dynamic checks into a constant number of queries per
    /// relation (§4.2). Only meaningful when `optimize` is on.
    pub batch: bool,
    /// Run the naive path against per-relation *reduced instances*
    /// (Appendix A's instance reduction). Only used when `optimize` is off
    /// and the query is SPJ-shaped.
    pub reduce: bool,
    /// Incremental (delta) support evaluation: execute the plan once on
    /// the base instance, materialize per-operator state, and answer each
    /// neighbor as a delta ([`crate::delta`]). The default path for
    /// SPJ/aggregate shapes over neighborhood supports; opaque shapes,
    /// uniform supports, budget-limited runs, and any neighbor that trips
    /// a delta guard fall back to full execution. Prices are bitwise
    /// identical with the flag on or off.
    pub delta: bool,
    /// Execution budget applied to every query the pricing engine runs
    /// (base executions, per-instance re-executions, batched probes).
    /// Trips surface as [`EngineError::BudgetExceeded`]. Unlimited by
    /// default.
    pub budget: ExecBudget,
    /// Worker-pool size for the per-support-instance loops (naive
    /// disagreements, partition fingerprints, and the optimizer's
    /// per-update dynamic checks). Results are bitwise identical to the
    /// sequential path for any setting; see [`crate::parallel`].
    pub parallelism: Parallelism,
    /// Incremental history-aware pricing: memoize per-query disagreement
    /// bitmaps and partition blocks in the broker's [`PricingCache`], so a
    /// purchase evaluates only the new query (O(S)) instead of the whole
    /// accumulated bundle (O(H·S)). Prices are bitwise identical with the
    /// cache on or off; see [`crate::cache`].
    pub cache: CacheConfig,
    /// Observability hooks (spans + metrics). Disabled by default; the
    /// disabled path is a single branch on a null sink, and prices are
    /// bitwise identical with telemetry on or off (see
    /// [`crate::telemetry`]).
    pub telemetry: Telemetry,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            optimize: true,
            batch: true,
            reduce: false,
            delta: true,
            budget: ExecBudget::UNLIMITED,
            parallelism: Parallelism::Sequential,
            cache: CacheConfig::default(),
            telemetry: Telemetry::disabled(),
        }
    }
}

impl EngineOptions {
    /// The paper's "no batching" configuration (Figure 5): static checks
    /// on, per-update dynamic queries.
    pub fn no_batching() -> Self {
        EngineOptions {
            optimize: true,
            batch: false,
            delta: false,
            ..Default::default()
        }
    }

    /// The unoptimized baseline: run the query per support instance.
    pub fn naive() -> Self {
        EngineOptions {
            optimize: false,
            batch: false,
            delta: false,
            ..Default::default()
        }
    }

    /// Toggles the incremental (delta) evaluation path.
    pub fn with_delta(mut self, delta: bool) -> Self {
        self.delta = delta;
        self
    }

    /// Replaces the execution budget.
    pub fn with_budget(mut self, budget: ExecBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replaces the worker-pool configuration.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Replaces the pricing-cache configuration.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the telemetry handle.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

/// Forwards an engine result, counting budget trips in the telemetry
/// registry on the way through.
fn meter_trips<T>(t: &Telemetry, r: Result<T, EngineError>) -> Result<T, EngineError> {
    if t.is_enabled() {
        if let Err(e) = &r {
            if e.is_budget_exceeded() {
                t.counter_add("budget_trips_total", 1);
            }
        }
    }
    r
}

/// Bag fingerprint of an output: display order ignored (see
/// [`crate::normal_form`] for why agreement is bag-based).
pub fn bag_fp(mut out: QueryOutput) -> Fingerprint {
    out.ordered = false;
    qirana_sqlengine::fingerprint(&out)
}

/// Combines per-query fingerprints into a bundle fingerprint
/// (order-sensitive: a bundle is a vector of queries).
pub fn combine_bundle(fps: &[Fingerprint]) -> Fingerprint {
    let mut acc: u128 = 0x5153_4cb9;
    for fp in fps {
        acc = acc.rotate_left(5) ^ fp.0.wrapping_mul(3);
    }
    Fingerprint(acc)
}

/// True when the delta evaluator may serve this query: the flag is on, no
/// execution budget is in force (delta probes skip whole executions, so
/// budget trips could not fire deterministically), and the shape has delta
/// rules. Support-set kind is checked at the call sites (neighborhood
/// arms only).
fn delta_applies(q: &Prepared, opts: &EngineOptions) -> bool {
    opts.delta && opts.budget.is_unlimited() && matches!(q.shape, Shape::Spj(_) | Shape::Agg(_))
}

/// Obtains the query's delta state: from the pricing cache when one is
/// supplied (keyed by plan fingerprint + database generation, like every
/// other artifact), building — and memoizing — it otherwise. Build errors
/// are base-execution errors, which every full path reproduces.
fn delta_state_for(
    db: &Database,
    q: &Prepared,
    opts: &EngineOptions,
    cache: Option<&mut PricingCache>,
) -> Result<Arc<DeltaState>, EngineError> {
    let tel = &opts.telemetry;
    let mut cache = cache;
    if let Some(c) = &mut cache {
        if let Some(state) = c.get_delta(q.plan_fp) {
            return Ok(state);
        }
    }
    let span = tel.span(Stage::DeltaBuild);
    let state = Arc::new(delta::build(db, q)?);
    drop(span);
    tel.counter_add("delta_builds_total", 1);
    if let Some(c) = &mut cache {
        c.insert_delta(q.plan_fp, Arc::clone(&state));
    }
    Ok(state)
}

/// Folds one delta probe sweep's tallies into the metrics registry.
fn record_probe_stats(tel: &Telemetry, stats: ProbeStats) {
    if tel.is_enabled() {
        tel.counter_add("delta_probes_total", stats.probes);
        tel.counter_add("delta_short_circuits_total", stats.short_circuits);
        tel.counter_add("delta_fallbacks_total", stats.fallbacks);
    }
}

/// Computes, for every support instance, whether the bundle's output on it
/// differs from the output on the stored database.
///
/// `skip[i] = true` excludes instance `i` from evaluation (its bit stays
/// `false`): history-aware pricing passes the already-charged bitmap here
/// (Algorithm 3), which also makes repeat pricing *faster*, as §5.3
/// observes.
///
/// `db` is `&mut` because the naive and aggregate-fallback paths apply each
/// update and roll it back; the database is unchanged on return.
pub fn bundle_disagreements(
    db: &mut Database,
    bundle: &[&Prepared],
    support: &SupportSet,
    opts: &EngineOptions,
    skip: Option<&[bool]>,
) -> Result<Vec<bool>, EngineError> {
    bundle_disagreements_impl(db, bundle, support, opts, skip, None)
}

/// [`bundle_disagreements`] with an optional pricing cache for delta-state
/// reuse across purchases (the cached entry points thread theirs through;
/// the uncached public path builds per call).
fn bundle_disagreements_impl(
    db: &mut Database,
    bundle: &[&Prepared],
    support: &SupportSet,
    opts: &EngineOptions,
    skip: Option<&[bool]>,
    mut cache: Option<&mut PricingCache>,
) -> Result<Vec<bool>, EngineError> {
    fault::check(fault::ENGINE_EXECUTE)
        .map_err(|f| EngineError::Eval(format!("injected fault: {f}")))?;
    let n = support.len();
    if let Some(s) = skip {
        assert_eq!(s.len(), n, "skip bitmap must cover the support set");
    }
    let tel = &opts.telemetry;
    let mut disagree = vec![false; n];
    // active[i]: still needs evaluation for the remaining queries.
    let mut active: Vec<bool> = match skip {
        Some(s) => s.iter().map(|&b| !b).collect(),
        None => vec![true; n],
    };

    for q in bundle {
        let span = if tel.is_enabled() {
            let s = tel.span_with(Stage::Disagreement, "coverage".into());
            // Deterministic per-query work measure: instances still active
            // going into this member — identical sequential vs parallel.
            s.count("neighbors", active.iter().filter(|&&a| a).count() as u64);
            s
        } else {
            tel.span(Stage::Disagreement)
        };
        let bits = meter_trips(
            tel,
            match support {
                SupportSet::Uniform(worlds) => {
                    let workers = opts.parallelism.workers(worlds.len());
                    if workers > 1 {
                        parallel::disagreements_uniform(
                            db,
                            q,
                            worlds,
                            &active,
                            opts.budget,
                            workers,
                            tel,
                        )
                    } else {
                        naive::disagreements_uniform(db, q, worlds, &active, opts.budget)
                    }
                }
                SupportSet::Neighborhood(updates) => {
                    let workers = opts.parallelism.workers(updates.len());
                    let delta_bits = if delta_applies(q, opts) {
                        let state = delta_state_for(db, q, opts, cache.as_deref_mut())?;
                        if state.is_usable() {
                            let probe_span = tel.span_with(Stage::DeltaProbe, "coverage".into());
                            let (bits, stats) = delta::disagreements_nbrs(
                                db, q, &state, updates, &active, workers, tel,
                            )?;
                            if tel.is_enabled() {
                                probe_span.count("probes", stats.probes);
                                probe_span.count("short_circuits", stats.short_circuits);
                                probe_span.count("fallbacks", stats.fallbacks);
                            }
                            record_probe_stats(tel, stats);
                            Some(Ok(bits))
                        } else {
                            None
                        }
                    } else {
                        None
                    };
                    if let Some(bits) = delta_bits {
                        bits
                    } else if opts.optimize {
                        match &q.shape {
                            Shape::Spj(s) => {
                                optimized::spj_disagreements(db, s, updates, &active, opts)
                            }
                            Shape::Agg(s) => {
                                optimized::agg_disagreements(db, q, s, updates, &active, opts)
                            }
                            Shape::Opaque { .. } if workers > 1 => parallel::disagreements_nbrs(
                                db,
                                q,
                                updates,
                                &active,
                                opts.budget,
                                workers,
                                tel,
                            ),
                            Shape::Opaque { .. } => {
                                naive::disagreements_nbrs(db, q, updates, &active, opts.budget)
                            }
                        }
                    } else if opts.reduce && matches!(q.shape, Shape::Spj(_)) {
                        naive::reduced_disagreements(db, q, updates, &active, opts.budget)
                    } else if workers > 1 {
                        parallel::disagreements_nbrs(
                            db,
                            q,
                            updates,
                            &active,
                            opts.budget,
                            workers,
                            tel,
                        )
                    } else {
                        naive::disagreements_nbrs(db, q, updates, &active, opts.budget)
                    }
                }
            },
        )?;
        let mut found = 0u64;
        for i in 0..n {
            if bits[i] {
                disagree[i] = true;
                // A later bundle member cannot change the verdict.
                active[i] = false;
                found += 1;
            }
        }
        if tel.is_enabled() {
            span.count("disagreements", found);
            tel.counter_add("neighbors_evaluated_total", n as u64);
            tel.counter_add("disagreements_found_total", found);
        }
        drop(span);
    }
    Ok(disagree)
}

/// Computes the bundle output fingerprint on every support instance
/// (Algorithm 2's dictionary keys). Skipped instances fingerprint as the
/// base output.
///
/// Honors `opts.budget` on every execution and fans the per-instance
/// executions out across `opts.parallelism` workers (fingerprints are
/// identical for any worker count; see [`crate::parallel`]).
pub fn bundle_partition(
    db: &mut Database,
    bundle: &[&Prepared],
    support: &SupportSet,
    opts: &EngineOptions,
) -> Result<Vec<Fingerprint>, EngineError> {
    bundle_partition_impl(db, bundle, support, opts, None)
}

/// One query's per-neighbor output fingerprints, served by the delta
/// evaluator when it applies and by full per-instance execution otherwise.
fn query_fps_neighborhood(
    db: &mut Database,
    q: &Prepared,
    updates: &[SupportUpdate],
    opts: &EngineOptions,
    cache: Option<&mut PricingCache>,
) -> Result<Vec<Fingerprint>, EngineError> {
    let tel = &opts.telemetry;
    let workers = opts.parallelism.workers(updates.len());
    if delta_applies(q, opts) {
        let state = delta_state_for(db, q, opts, cache)?;
        if state.is_usable() {
            let probe_span = tel.span_with(Stage::DeltaProbe, "entropy".into());
            let (fps, stats) = delta::query_fps_nbrs(db, q, &state, updates, workers, tel)?;
            if tel.is_enabled() {
                probe_span.count("probes", stats.probes);
                probe_span.count("short_circuits", stats.short_circuits);
                probe_span.count("fallbacks", stats.fallbacks);
            }
            record_probe_stats(tel, stats);
            return Ok(fps);
        }
    }
    meter_trips(
        tel,
        if workers > 1 {
            parallel::query_fps_nbrs(db, q, updates, opts.budget, workers, tel)
        } else {
            naive::query_fps_nbrs(db, q, updates, opts.budget)
        },
    )
}

/// [`bundle_partition`] with an optional pricing cache for delta-state
/// reuse.
fn bundle_partition_impl(
    db: &mut Database,
    bundle: &[&Prepared],
    support: &SupportSet,
    opts: &EngineOptions,
    mut cache: Option<&mut PricingCache>,
) -> Result<Vec<Fingerprint>, EngineError> {
    fault::check(fault::ENGINE_EXECUTE)
        .map_err(|f| EngineError::Eval(format!("injected fault: {f}")))?;
    let tel = &opts.telemetry;
    let n = support.len();
    let _span = if tel.is_enabled() {
        let s = tel.span_with(Stage::Disagreement, "entropy".into());
        s.count("neighbors", n as u64);
        tel.counter_add("neighbors_evaluated_total", n as u64);
        s
    } else {
        tel.span(Stage::Disagreement)
    };
    // Delta-eligible members price per query and fold with the same
    // order-sensitive combiner the monolithic path applies per instance —
    // bitwise identical by the combiner's definition (the differential
    // suite pins this equivalence).
    if let SupportSet::Neighborhood(updates) = support {
        if bundle.iter().any(|q| delta_applies(q, opts)) {
            let mut per_query = Vec::with_capacity(bundle.len());
            for q in bundle {
                per_query.push(query_fps_neighborhood(
                    db,
                    q,
                    updates,
                    opts,
                    cache.as_deref_mut(),
                )?);
            }
            let mut row = vec![Fingerprint(0); bundle.len()];
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                for (slot, fps) in row.iter_mut().zip(&per_query) {
                    *slot = fps[i];
                }
                out.push(combine_bundle(&row));
            }
            return Ok(out);
        }
    }
    let workers = opts.parallelism.workers(n);
    meter_trips(
        tel,
        match support {
            SupportSet::Neighborhood(updates) if workers > 1 => {
                parallel::partition_nbrs(db, bundle, updates, opts.budget, workers, tel)
            }
            SupportSet::Neighborhood(updates) => {
                naive::partition_nbrs(db, bundle, updates, opts.budget)
            }
            SupportSet::Uniform(worlds) if workers > 1 => {
                parallel::partition_uniform(bundle, worlds, opts.budget, workers, tel)
            }
            SupportSet::Uniform(worlds) => {
                naive::partition_uniform(db, bundle, worlds, opts.budget)
            }
        },
    )
}

/// A single query's full (unmasked) disagreement bitmap, memoized in
/// `cache` under the query's plan fingerprint.
///
/// This is the coverage-family cache primitive: history-aware `buy` masks
/// the shared full bitmap with the buyer's charged bits *after* lookup,
/// which is bitwise identical to passing the charged bits as `skip` to
/// [`bundle_disagreements`] — per-instance verdicts are independent, so
/// skipping an instance only suppresses its evaluation, never changes
/// another's bit.
pub fn query_disagreements_cached(
    db: &mut Database,
    q: &Prepared,
    support: &SupportSet,
    opts: &EngineOptions,
    cache: &mut PricingCache,
) -> Result<Arc<Vec<bool>>, EngineError> {
    let tel = &opts.telemetry;
    {
        let lookup = tel.span_with(Stage::CacheLookup, String::new());
        if let Some(bits) = cache.get_bits(q.plan_fp) {
            lookup.count("hit", 1);
            return Ok(bits);
        }
        lookup.count("miss", 1);
    }
    let bits = Arc::new(bundle_disagreements_impl(
        db,
        &[q],
        support,
        opts,
        None,
        Some(cache),
    )?);
    cache.insert_bits(q.plan_fp, Arc::clone(&bits));
    Ok(bits)
}

/// Cache-aware [`bundle_disagreements`]: the OR of the members' memoized
/// full bitmaps.
///
/// Bitwise identical to the uncached path: the uncached active-set
/// short-circuit only skips instances already known to disagree, and a
/// skipped instance's bit is already `true` in the OR.
pub fn bundle_disagreements_cached(
    db: &mut Database,
    bundle: &[&Prepared],
    support: &SupportSet,
    opts: &EngineOptions,
    cache: &mut PricingCache,
) -> Result<Vec<bool>, EngineError> {
    fault::check(fault::ENGINE_EXECUTE)
        .map_err(|f| EngineError::Eval(format!("injected fault: {f}")))?;
    let n = support.len();
    let mut disagree = vec![false; n];
    for q in bundle {
        let bits = query_disagreements_cached(db, q, support, opts, cache)?;
        for (d, &b) in disagree.iter_mut().zip(bits.iter()) {
            *d |= b;
        }
    }
    Ok(disagree)
}

/// A single query's per-instance output fingerprints (the entropy-family
/// cache primitive), computed without memoization.
pub fn query_partition(
    db: &mut Database,
    q: &Prepared,
    support: &SupportSet,
    opts: &EngineOptions,
) -> Result<Vec<Fingerprint>, EngineError> {
    query_partition_impl(db, q, support, opts, None)
}

/// [`query_partition`] with an optional pricing cache for delta-state
/// reuse.
fn query_partition_impl(
    db: &mut Database,
    q: &Prepared,
    support: &SupportSet,
    opts: &EngineOptions,
    cache: Option<&mut PricingCache>,
) -> Result<Vec<Fingerprint>, EngineError> {
    fault::check(fault::ENGINE_EXECUTE)
        .map_err(|f| EngineError::Eval(format!("injected fault: {f}")))?;
    let tel = &opts.telemetry;
    let n = support.len();
    let _span = if tel.is_enabled() {
        let s = tel.span_with(Stage::Disagreement, "entropy".into());
        s.count("neighbors", n as u64);
        tel.counter_add("neighbors_evaluated_total", n as u64);
        s
    } else {
        tel.span(Stage::Disagreement)
    };
    let workers = opts.parallelism.workers(n);
    match support {
        SupportSet::Neighborhood(updates) => query_fps_neighborhood(db, q, updates, opts, cache),
        SupportSet::Uniform(worlds) if workers > 1 => meter_trips(
            tel,
            parallel::query_fps_uniform(q, worlds, opts.budget, workers, tel),
        ),
        SupportSet::Uniform(worlds) => {
            meter_trips(tel, naive::query_fps_uniform(q, worlds, opts.budget))
        }
    }
}

/// [`query_partition`], memoized in `cache` under the query's plan
/// fingerprint.
pub fn query_fingerprints_cached(
    db: &mut Database,
    q: &Prepared,
    support: &SupportSet,
    opts: &EngineOptions,
    cache: &mut PricingCache,
) -> Result<Arc<Vec<Fingerprint>>, EngineError> {
    let tel = &opts.telemetry;
    {
        let lookup = tel.span_with(Stage::CacheLookup, String::new());
        if let Some(fps) = cache.get_blocks(q.plan_fp) {
            lookup.count("hit", 1);
            return Ok(fps);
        }
        lookup.count("miss", 1);
    }
    let fps = Arc::new(query_partition_impl(db, q, support, opts, Some(cache))?);
    cache.insert_blocks(q.plan_fp, Arc::clone(&fps));
    Ok(fps)
}

/// Cache-aware [`bundle_partition`]: folds the members' memoized per-query
/// fingerprint vectors instance-by-instance with [`combine_bundle`].
///
/// Bitwise identical to the uncached path: on every instance each member's
/// fingerprint is its own output fingerprint there (an update leaving a
/// member's referenced tables untouched cannot change its output, so base
/// reuse and execution agree), and the fold applies the same
/// order-sensitive combiner to the same member order.
pub fn bundle_partition_cached(
    db: &mut Database,
    bundle: &[&Prepared],
    support: &SupportSet,
    opts: &EngineOptions,
    cache: &mut PricingCache,
) -> Result<Vec<Fingerprint>, EngineError> {
    fault::check(fault::ENGINE_EXECUTE)
        .map_err(|f| EngineError::Eval(format!("injected fault: {f}")))?;
    let mut per_query = Vec::with_capacity(bundle.len());
    for q in bundle {
        per_query.push(query_fingerprints_cached(db, q, support, opts, cache)?);
    }
    let n = support.len();
    let mut row = vec![Fingerprint(0); bundle.len()];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        for (slot, fps) in row.iter_mut().zip(&per_query) {
            *slot = fps[i];
        }
        out.push(combine_bundle(&row));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal_form::prepare_query;
    use crate::support::{generate_support, SupportConfig};
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![
                vec![1.into(), "m".into(), 25.into()],
                vec![2.into(), "f".into(), 13.into()],
                vec![3.into(), "m".into(), 45.into()],
                vec![4.into(), "f".into(), 19.into()],
            ],
        );
        db
    }

    /// The core cross-check: every engine configuration must produce the
    /// same disagreement bits as the naive baseline.
    #[test]
    fn optimizer_matches_naive_on_bundle() {
        let mut database = db();
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 300,
                ..Default::default()
            },
        ));
        let queries = [
            "select count(*) from User where gender = 'f'",
            "select gender from User where age > 18",
            "select gender, avg(age) from User group by gender",
        ];
        let prepared: Vec<_> = queries
            .iter()
            .map(|q| prepare_query(&database, q).unwrap())
            .collect();
        let bundle: Vec<&Prepared> = prepared.iter().collect();

        let naive = bundle_disagreements(
            &mut database,
            &bundle,
            &support,
            &EngineOptions::naive(),
            None,
        )
        .unwrap();
        for opts in [EngineOptions::default(), EngineOptions::no_batching()] {
            let got = bundle_disagreements(&mut database, &bundle, &support, &opts, None).unwrap();
            assert_eq!(got, naive, "mismatch under {opts:?}");
        }
    }

    #[test]
    fn database_unchanged_after_pricing() {
        let mut database = db();
        let before = database.table("User").unwrap().rows.clone();
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 100,
                ..Default::default()
            },
        ));
        let q = prepare_query(&database, "select avg(age) from User").unwrap();
        bundle_disagreements(
            &mut database,
            &[&q],
            &support,
            &EngineOptions::default(),
            None,
        )
        .unwrap();
        bundle_partition(&mut database, &[&q], &support, &EngineOptions::default()).unwrap();
        assert_eq!(database.table("User").unwrap().rows, before);
    }

    #[test]
    fn skip_suppresses_evaluation() {
        let mut database = db();
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 50,
                ..Default::default()
            },
        ));
        let q = prepare_query(&database, "select * from User").unwrap();
        let skip = vec![true; 50];
        let bits = bundle_disagreements(
            &mut database,
            &[&q],
            &support,
            &EngineOptions::default(),
            Some(&skip),
        )
        .unwrap();
        assert!(bits.iter().all(|&b| !b), "all skipped → all false");
    }

    #[test]
    fn full_dataset_query_disagrees_everywhere() {
        let mut database = db();
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 200,
                ..Default::default()
            },
        ));
        let q = prepare_query(&database, "select * from User").unwrap();
        let bits = bundle_disagreements(
            &mut database,
            &[&q],
            &support,
            &EngineOptions::default(),
            None,
        )
        .unwrap();
        assert!(
            bits.iter().all(|&b| b),
            "every neighbor differs from D, so Q_all must disagree everywhere"
        );
    }

    #[test]
    fn untouched_relation_never_disagrees() {
        let mut database = db();
        database.add_table(
            TableSchema::new(
                "Other",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            vec![vec![1.into(), 2.into()]],
        );
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 100,
                ..Default::default()
            },
        ));
        let q = prepare_query(&database, "select 1 from Other where v = 2").unwrap();
        let bits = bundle_disagreements(
            &mut database,
            &[&q],
            &support,
            &EngineOptions::default(),
            None,
        )
        .unwrap();
        // Only updates touching Other can flip bits; verify against which
        // updates touch table index 1.
        let SupportSet::Neighborhood(updates) = &support else {
            unreachable!()
        };
        for (i, up) in updates.iter().enumerate() {
            if up.table() == 0 {
                assert!(!bits[i], "User update cannot change a query on Other");
            }
        }
    }

    #[test]
    fn cached_paths_match_uncached_bitwise() {
        let mut database = db();
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 250,
                ..Default::default()
            },
        ));
        let queries = [
            "select count(*) from User where gender = 'f'",
            "select gender from User where age > 18",
            "select gender, avg(age) from User group by gender",
        ];
        let prepared: Vec<_> = queries
            .iter()
            .map(|q| prepare_query(&database, q).unwrap())
            .collect();
        let bundle: Vec<&Prepared> = prepared.iter().collect();
        let opts = EngineOptions::default();
        let mut cache = PricingCache::new(64);

        let bits = bundle_disagreements(&mut database, &bundle, &support, &opts, None).unwrap();
        // Cold (all misses) and warm (all hits) must both agree bitwise.
        for round in 0..2 {
            let cached =
                bundle_disagreements_cached(&mut database, &bundle, &support, &opts, &mut cache)
                    .unwrap();
            assert_eq!(cached, bits, "round {round}");
        }
        let part = bundle_partition(&mut database, &bundle, &support, &opts).unwrap();
        for round in 0..2 {
            let cached =
                bundle_partition_cached(&mut database, &bundle, &support, &opts, &mut cache)
                    .unwrap();
            assert_eq!(cached, part, "round {round}");
        }
        let s = cache.stats();
        assert_eq!(s.misses, 6, "3 bitmap + 3 blocks cold misses");
        assert_eq!(s.hits, 6, "warm rounds are pure hits");
    }

    /// The delta evaluator is a pure accelerator: both families must be
    /// bitwise identical with it on or off, sequentially and in parallel,
    /// cached and uncached.
    #[test]
    fn delta_paths_match_full_bitwise() {
        let mut database = db();
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 250,
                ..Default::default()
            },
        ));
        let queries = [
            "select count(*) from User where gender = 'f'",
            "select gender from User where age > 18",
            "select gender, avg(age) from User group by gender",
            "select distinct gender from User", // opaque: per-neighbor fallback path
        ];
        let prepared: Vec<_> = queries
            .iter()
            .map(|q| prepare_query(&database, q).unwrap())
            .collect();
        let bundle: Vec<&Prepared> = prepared.iter().collect();

        let off = EngineOptions::default().with_delta(false);
        let bits_full = bundle_disagreements(&mut database, &bundle, &support, &off, None).unwrap();
        let part_full = bundle_partition(&mut database, &bundle, &support, &off).unwrap();

        for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let on = EngineOptions::default().with_parallelism(par);
            let bits = bundle_disagreements(&mut database, &bundle, &support, &on, None).unwrap();
            assert_eq!(bits, bits_full, "coverage mismatch under {par:?}");
            let part = bundle_partition(&mut database, &bundle, &support, &on).unwrap();
            assert_eq!(part, part_full, "entropy mismatch under {par:?}");

            let mut cache = PricingCache::new(64);
            for round in 0..2 {
                let cached =
                    bundle_disagreements_cached(&mut database, &bundle, &support, &on, &mut cache)
                        .unwrap();
                assert_eq!(cached, bits_full, "cached coverage, round {round}");
                let cached =
                    bundle_partition_cached(&mut database, &bundle, &support, &on, &mut cache)
                        .unwrap();
                assert_eq!(cached, part_full, "cached entropy, round {round}");
            }
        }
    }

    /// The delta telemetry counters move, and cached delta states are
    /// built once per plan rather than once per purchase.
    #[test]
    fn delta_counters_and_cached_builds() {
        let mut database = db();
        let support = SupportSet::Neighborhood(generate_support(
            &database,
            &SupportConfig {
                size: 120,
                ..Default::default()
            },
        ));
        let q = prepare_query(&database, "select gender from User where age > 18").unwrap();
        let opts = EngineOptions::default().with_telemetry(Telemetry::enabled());
        let mut cache = PricingCache::new(16);
        for _ in 0..3 {
            query_disagreements_cached(&mut database, &q, &support, &opts, &mut cache).unwrap();
        }
        let sink = opts.telemetry.sink().map(Arc::clone).unwrap();
        assert_eq!(
            sink.counter("delta_builds_total"),
            1,
            "state reused from the cache after the first build"
        );
        assert_eq!(sink.counter("delta_probes_total"), 120);
        assert!(
            sink.counter("delta_short_circuits_total") + sink.counter("delta_fallbacks_total")
                <= sink.counter("delta_probes_total")
        );
        // The delta artifact is counter-quiet: the three rounds above are
        // 1 bitmap miss + 2 bitmap hits, exactly as without delta.
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn combine_bundle_is_order_sensitive() {
        let a = Fingerprint(1);
        let b = Fingerprint(2);
        assert_ne!(combine_bundle(&[a, b]), combine_bundle(&[b, a]));
        assert_eq!(combine_bundle(&[a, b]), combine_bundle(&[a, b]));
    }
}
