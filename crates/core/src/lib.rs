//! # qirana-core
//!
//! A from-scratch Rust implementation of **QIRANA** (Deep & Koutris,
//! SIGMOD 2017): a query-based data-pricing broker that sits between a
//! buyer and a DBMS and charges for SQL queries according to the
//! information they disclose, with formal arbitrage-freeness guarantees.
//!
//! ## How it works
//!
//! From the buyer's viewpoint there is a set `I` of *possible databases*
//! consistent with the public schema, keys, domains, and cardinalities.
//! Answering a query rules out every `D' ∈ I` with `Q(D') ≠ Q(D)`; the
//! price measures how much of `I` the answer eliminates. Tracking all of
//! `I` is hopeless, so QIRANA tracks a small **support set** of neighboring
//! databases represented as row/swap updates ([`support`]), weights them
//! ([`weights`] — uniformly, or by entropy maximization honoring seller
//! price points), and prices with one of four arbitrage-free functions
//! ([`pricing`]). Disagreement checks are accelerated by static analysis
//! and batched view-maintenance-style probes ([`optimized`], §4 of the
//! paper), and per-buyer history makes repeated information free
//! ([`broker`], §3.5).
//!
//! ## Quick start
//!
//! ```
//! use qirana_core::{Qirana, QiranaConfig, SupportConfig};
//! use qirana_sqlengine::{ColumnDef, DataType, Database, TableSchema};
//!
//! let mut db = Database::new();
//! db.add_table(
//!     TableSchema::new(
//!         "User",
//!         vec![
//!             ColumnDef::new("uid", DataType::Int),
//!             ColumnDef::new("gender", DataType::Str),
//!             ColumnDef::new("age", DataType::Int),
//!         ],
//!         &["uid"],
//!     ),
//!     vec![
//!         vec![1.into(), "m".into(), 25.into()],
//!         vec![2.into(), "f".into(), 13.into()],
//!         vec![3.into(), "m".into(), 45.into()],
//!         vec![4.into(), "f".into(), 19.into()],
//!     ],
//! );
//!
//! let mut broker = Qirana::new(
//!     db,
//!     QiranaConfig {
//!         total_price: 100.0,
//!         support: SupportConfig { size: 300, ..Default::default() },
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//!
//! let full = broker.quote("SELECT * FROM User").unwrap();
//! let narrow = broker.quote("SELECT count(*) FROM User WHERE gender = 'f'").unwrap();
//! assert!(narrow <= full);
//! ```

pub mod broker;
pub mod cache;
pub mod delta;
pub mod determinacy;
pub mod engine;
pub mod fault;
pub mod ledger;
pub mod naive;
pub mod normal_form;
pub mod optimized;
pub mod parallel;
pub mod pricing;
pub mod support;
pub mod telemetry;
pub mod update;
pub mod weights;

pub use broker::{BrokerError, Purchase, Qirana, QiranaConfig, Quote, RetryPolicy, SupportType};
pub use cache::{CacheConfig, CacheStats, PricingCache};
pub use delta::DeltaState;
pub use determinacy::{determines, Determinacy};
pub use engine::{
    bundle_disagreements, bundle_disagreements_cached, bundle_partition, bundle_partition_cached,
    EngineOptions,
};
pub use ledger::{FsyncPolicy, Ledger, LedgerConfig, LedgerError, LedgerEvent, SnapshotState};
pub use normal_form::{prepare_query, Prepared, Shape};
pub use parallel::Parallelism;
pub use pricing::{PricingError, PricingFunction};
pub use support::{
    generate_support, generate_uniform_worlds, try_generate_support, SupportConfig, SupportError,
    SupportSet,
};
pub use telemetry::{Clock, MonotonicClock, Stage, Telemetry, TelemetrySink, TestClock};
pub use update::SupportUpdate;
pub use weights::{assign_weights, assign_weights_with, uniform_weights, PricePoint, WeightError};
