//! Parallel pricing executor: fans per-support-instance query executions
//! out across a scoped worker pool.
//!
//! The support loop is the system's single hottest path — O(|support| ×
//! query cost), and every iteration is independent of the others. This
//! module converts it into near-linear multicore speedup while preserving
//! three guarantees the sequential path gives:
//!
//! * **Determinism.** Results are collected *index-ordered*: each support
//!   instance's verdict lands in its own slot regardless of which worker
//!   computed it or when, so disagreement bits — and therefore prices —
//!   are bitwise identical to the sequential path for any worker count.
//! * **Budget enforcement.** Every per-instance execution runs under the
//!   same [`ExecBudget`] as sequentially (one fresh meter per execution,
//!   deadline measured from that execution's start). The first
//!   [`EngineError::BudgetExceeded`] — or any other error — raises a
//!   cooperative stop flag; workers abandon their queues at the next
//!   instance boundary and the lowest-index error is returned.
//! * **Replica isolation.** Neighborhood instances are evaluated by
//!   applying an update and rolling it back; each worker does this against
//!   its own deep [`Database`] clone (clone-on-spawn), so the caller's
//!   database is never touched. Uniform worlds are read-only and shared by
//!   reference — `Database` is `Sync` (asserted at compile time in
//!   `qirana-sqlengine`), and all interior-mutable execution state lives
//!   in per-execution `ExecContext`s.
//!
//! Work is distributed by chunked atomic stealing: workers grab
//! [`CHUNK`]-sized index ranges from a shared counter, which balances load
//! when per-instance cost is skewed (e.g. a handful of updates hit a large
//! joining relation) without affecting determinism — only *who* computes a
//! slot varies, never *what* lands in it.

use crate::engine::bag_fp;
use crate::naive::bundle_refs;
use crate::normal_form::Prepared;
use crate::telemetry::Telemetry;
use crate::update::SupportUpdate;
use qirana_sqlengine::update::apply_writes;
use qirana_sqlengine::{execute, Database, EngineError, ExecBudget, ExecContext, Fingerprint};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How many support instances a worker claims per steal. Large enough to
/// amortize the atomic, small enough to load-balance skewed instances.
const CHUNK: usize = 16;

/// Below this many instances the fan-out overhead (thread spawn + replica
/// clone) outweighs the win; callers fall back to the sequential path.
const MIN_ITEMS_PER_WORKER: usize = 32;

/// Degree of parallelism for the pricing executor, threaded through
/// [`crate::EngineOptions`] and honored by every support-loop primitive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Single-threaded (the default): identical code path to the
    /// pre-parallel engine.
    #[default]
    Sequential,
    /// A fixed worker-pool size (values 0 and 1 mean sequential).
    Threads(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// Worker count for a support loop of `items` instances: the
    /// configured cap, shrunk so each worker has at least
    /// [`MIN_ITEMS_PER_WORKER`] instances (1 = run sequentially).
    pub fn workers(&self, items: usize) -> usize {
        let cap = match self {
            Parallelism::Sequential => return 1,
            Parallelism::Threads(n) => (*n).max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        };
        cap.min(items / MIN_ITEMS_PER_WORKER).max(1)
    }
}

/// Runs `f(ctx, i)` for every `i in 0..n` across `workers` scoped threads
/// and returns the results index-ordered.
///
/// `make_ctx` builds one per-worker context (a database replica, or `()`
/// for read-only work) on the worker's own thread. Any error raises the
/// stop flag — remaining workers abandon their queues at the next chunk
/// boundary — and the error with the lowest index wins deterministically
/// among those raised.
pub(crate) fn run_indexed<C, T, M, F>(
    n: usize,
    workers: usize,
    make_ctx: M,
    f: F,
    tel: &Telemetry,
) -> Result<Vec<T>, EngineError>
where
    C: Send,
    T: Send,
    M: Fn() -> C + Sync,
    F: Fn(&mut C, usize) -> Result<T, EngineError> + Sync,
{
    debug_assert!(workers > 1, "sequential callers skip the pool");
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    if tel.is_enabled() {
        tel.counter_add("parallel_fanouts_total", 1);
        tel.gauge_set("parallel_workers", workers as u64);
    }

    let per_worker: Vec<WorkerResult<T>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut ctx = make_ctx();
                    let mut out: Vec<(usize, T)> = Vec::with_capacity(n / workers + CHUNK);
                    let mut err: Option<(usize, EngineError)> = None;
                    let mut chunks = 0u64;
                    'steal: while !stop.load(Ordering::Relaxed) {
                        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        chunks += 1;
                        for i in start..(start + CHUNK).min(n) {
                            match f(&mut ctx, i) {
                                Ok(v) => out.push((i, v)),
                                Err(e) => {
                                    stop.store(true, Ordering::Relaxed);
                                    err = Some((i, e));
                                    break 'steal;
                                }
                            }
                        }
                    }
                    if tel.is_enabled() {
                        // Error-free pools claim exactly ceil(n / CHUNK)
                        // chunks in total; the per-worker split is the
                        // load-balance picture.
                        tel.counter_add("parallel_chunks_claimed_total", chunks);
                        tel.observe("parallel_worker_chunks", chunks);
                    }
                    (out, err)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise the worker's own panic payload on the caller
                // thread instead of replacing it with a generic message.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut first_err: Option<(usize, EngineError)> = None;
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    for (out, err) in per_worker {
        for (i, v) in out {
            slots[i] = Some(v);
        }
        if let Some((i, e)) = err {
            if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                first_err = Some((i, e));
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    // Every index in 0..n is claimed exactly once by the chunked atomic
    // counter (the loom model in crates/core/tests/loom.rs exercises this
    // invariant under perturbed schedules), so every slot is filled — and
    // if that invariant ever breaks, the broker degrades instead of
    // aborting mid-purchase.
    slots
        .into_iter()
        .map(|s| s.ok_or_else(|| EngineError::internal("worker pool left a result slot unfilled")))
        .collect()
}

type WorkerResult<T> = (Vec<(usize, T)>, Option<(usize, EngineError)>);

/// Parallel [`crate::naive::disagreements_nbrs`]: per-worker database
/// replicas, apply/execute/undo per active instance.
pub fn disagreements_nbrs(
    db: &Database,
    q: &Prepared,
    updates: &[SupportUpdate],
    active: &[bool],
    budget: ExecBudget,
    workers: usize,
    tel: &Telemetry,
) -> Result<Vec<bool>, EngineError> {
    let refs = q.referenced_tables();
    let base = bag_fp(execute(&q.plan, &ExecContext::new(db).with_budget(budget))?);
    run_indexed(
        updates.len(),
        workers,
        || db.clone(),
        |local: &mut Database, i| {
            if !active[i] || !refs.contains(&updates[i].table()) {
                return Ok(false);
            }
            let undo = updates[i].apply(local);
            let fp = execute(&q.plan, &ExecContext::new(local).with_budget(budget)).map(bag_fp);
            apply_writes(local, &undo);
            Ok(fp? != base)
        },
        tel,
    )
}

/// Parallel [`crate::naive::disagreements_uniform`]: the worlds are
/// read-only, so workers share them by reference — no replicas needed.
pub fn disagreements_uniform(
    db: &Database,
    q: &Prepared,
    worlds: &[Database],
    active: &[bool],
    budget: ExecBudget,
    workers: usize,
    tel: &Telemetry,
) -> Result<Vec<bool>, EngineError> {
    let base = bag_fp(execute(&q.plan, &ExecContext::new(db).with_budget(budget))?);
    run_indexed(
        worlds.len(),
        workers,
        || (),
        |_, i| {
            if !active[i] {
                return Ok(false);
            }
            let fp = bag_fp(execute(
                &q.plan,
                &ExecContext::new(&worlds[i]).with_budget(budget),
            )?);
            Ok(fp != base)
        },
        tel,
    )
}

/// Parallel [`crate::naive::partition_nbrs`]: per-worker replicas, with the
/// same unreferenced-table short-circuit (those instances fingerprint as
/// the base, computed once up front).
pub fn partition_nbrs(
    db: &Database,
    bundle: &[&Prepared],
    updates: &[SupportUpdate],
    budget: ExecBudget,
    workers: usize,
    tel: &Telemetry,
) -> Result<Vec<Fingerprint>, EngineError> {
    let refs = bundle_refs(bundle);
    let base = if updates.iter().any(|u| !refs.contains(&u.table())) {
        Some(bundle_fps(db, bundle, budget)?)
    } else {
        None
    };
    run_indexed(
        updates.len(),
        workers,
        || db.clone(),
        |local: &mut Database, i| {
            if let Some(fp) = base {
                if !refs.contains(&updates[i].table()) {
                    return Ok(fp);
                }
            }
            let undo = updates[i].apply(local);
            let fps = bundle_fps(local, bundle, budget);
            apply_writes(local, &undo);
            fps
        },
        tel,
    )
}

/// Parallel [`crate::naive::query_fps_nbrs`]: per-worker replicas, base
/// fingerprint reused for every instance whose update leaves the query's
/// referenced tables untouched.
pub fn query_fps_nbrs(
    db: &Database,
    q: &Prepared,
    updates: &[SupportUpdate],
    budget: ExecBudget,
    workers: usize,
    tel: &Telemetry,
) -> Result<Vec<Fingerprint>, EngineError> {
    let refs = q.referenced_tables();
    let base = bag_fp(execute(&q.plan, &ExecContext::new(db).with_budget(budget))?);
    run_indexed(
        updates.len(),
        workers,
        || db.clone(),
        |local: &mut Database, i| {
            if !refs.contains(&updates[i].table()) {
                return Ok(base);
            }
            let undo = updates[i].apply(local);
            let fp = execute(&q.plan, &ExecContext::new(local).with_budget(budget)).map(bag_fp);
            apply_writes(local, &undo);
            fp
        },
        tel,
    )
}

/// Parallel [`crate::naive::query_fps_uniform`]: read-only shared worlds.
pub fn query_fps_uniform(
    q: &Prepared,
    worlds: &[Database],
    budget: ExecBudget,
    workers: usize,
    tel: &Telemetry,
) -> Result<Vec<Fingerprint>, EngineError> {
    run_indexed(
        worlds.len(),
        workers,
        || (),
        |_, i| {
            Ok(bag_fp(execute(
                &q.plan,
                &ExecContext::new(&worlds[i]).with_budget(budget),
            )?))
        },
        tel,
    )
}

/// Parallel [`crate::naive::partition_uniform`]: read-only shared worlds.
pub fn partition_uniform(
    bundle: &[&Prepared],
    worlds: &[Database],
    budget: ExecBudget,
    workers: usize,
    tel: &Telemetry,
) -> Result<Vec<Fingerprint>, EngineError> {
    run_indexed(
        worlds.len(),
        workers,
        || (),
        |_, i| bundle_fps(&worlds[i], bundle, budget),
        tel,
    )
}

fn bundle_fps(
    db: &Database,
    bundle: &[&Prepared],
    budget: ExecBudget,
) -> Result<Fingerprint, EngineError> {
    let mut fps = Vec::with_capacity(bundle.len());
    for q in bundle {
        fps.push(bag_fp(execute(
            &q.plan,
            &ExecContext::new(db).with_budget(budget),
        )?));
    }
    Ok(crate::engine::combine_bundle(&fps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::normal_form::prepare_query;
    use crate::support::{generate_support, generate_uniform_worlds, SupportConfig};
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};
    use std::time::Duration;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("grp", DataType::Str),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            (0..30i64)
                .map(|i| {
                    vec![
                        i.into(),
                        if i % 3 == 0 { "a" } else { "b" }.into(),
                        (i * 5).into(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        db
    }

    #[test]
    fn workers_respects_caps() {
        assert_eq!(Parallelism::Sequential.workers(1_000_000), 1);
        assert_eq!(Parallelism::Threads(0).workers(10_000), 1);
        assert_eq!(Parallelism::Threads(4).workers(10_000), 4);
        assert_eq!(Parallelism::Threads(4).workers(40), 1);
        assert_eq!(Parallelism::Threads(4).workers(64), 2);
        assert!(Parallelism::Auto.workers(1_000_000) >= 1);
    }

    #[test]
    fn parallel_nbrs_matches_sequential() {
        let mut database = db();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 400,
                ..Default::default()
            },
        );
        let active = vec![true; updates.len()];
        for sql in [
            "select v from T where grp = 'a'",
            "select grp, sum(v) from T group by grp",
        ] {
            let q = prepare_query(&database, sql).unwrap();
            let seq = naive::disagreements_nbrs(
                &mut database,
                &q,
                &updates,
                &active,
                ExecBudget::UNLIMITED,
            )
            .unwrap();
            for workers in [2, 3, 8] {
                let par = disagreements_nbrs(
                    &database,
                    &q,
                    &updates,
                    &active,
                    ExecBudget::UNLIMITED,
                    workers,
                    &Telemetry::disabled(),
                )
                .unwrap();
                assert_eq!(seq, par, "worker count {workers} changed bits for {sql}");
            }
        }
    }

    #[test]
    fn parallel_uniform_matches_sequential() {
        let database = db();
        let worlds = generate_uniform_worlds(&database, 64, 9);
        let active = vec![true; worlds.len()];
        let q = prepare_query(&database, "select grp, v from T").unwrap();
        let seq =
            naive::disagreements_uniform(&database, &q, &worlds, &active, ExecBudget::UNLIMITED)
                .unwrap();
        let par = disagreements_uniform(
            &database,
            &q,
            &worlds,
            &active,
            ExecBudget::UNLIMITED,
            4,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_partition_matches_sequential() {
        let mut database = db();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 300,
                ..Default::default()
            },
        );
        let q1 = prepare_query(&database, "select count(*) from T where v > 40").unwrap();
        let q2 = prepare_query(&database, "select grp from T").unwrap();
        let bundle = [&q1, &q2];
        let seq =
            naive::partition_nbrs(&mut database, &bundle, &updates, ExecBudget::UNLIMITED).unwrap();
        let par = partition_nbrs(
            &database,
            &bundle,
            &updates,
            ExecBudget::UNLIMITED,
            4,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(seq, par);

        let worlds = generate_uniform_worlds(&database, 64, 5);
        let seq_u =
            naive::partition_uniform(&database, &bundle, &worlds, ExecBudget::UNLIMITED).unwrap();
        let par_u = partition_uniform(
            &bundle,
            &worlds,
            ExecBudget::UNLIMITED,
            4,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(seq_u, par_u);
    }

    #[test]
    fn parallel_query_fps_match_sequential() {
        let mut database = db();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 300,
                ..Default::default()
            },
        );
        let q = prepare_query(&database, "select grp, sum(v) from T group by grp").unwrap();
        let seq =
            naive::query_fps_nbrs(&mut database, &q, &updates, ExecBudget::UNLIMITED).unwrap();
        for workers in [2, 4] {
            let par = query_fps_nbrs(
                &database,
                &q,
                &updates,
                ExecBudget::UNLIMITED,
                workers,
                &Telemetry::disabled(),
            )
            .unwrap();
            assert_eq!(seq, par, "worker count {workers} changed fingerprints");
        }

        let worlds = generate_uniform_worlds(&database, 64, 5);
        let seq_u = naive::query_fps_uniform(&q, &worlds, ExecBudget::UNLIMITED).unwrap();
        let par_u = query_fps_uniform(
            &q,
            &worlds,
            ExecBudget::UNLIMITED,
            4,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(seq_u, par_u);
    }

    #[test]
    fn caller_database_is_untouched() {
        let database = db();
        let before = database.table("T").unwrap().rows.clone();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 200,
                ..Default::default()
            },
        );
        let q = prepare_query(&database, "select v from T where v > 10").unwrap();
        disagreements_nbrs(
            &database,
            &q,
            &updates,
            &vec![true; updates.len()],
            ExecBudget::UNLIMITED,
            4,
            &Telemetry::disabled(),
        )
        .unwrap();
        assert_eq!(database.table("T").unwrap().rows, before);
    }

    #[test]
    fn budget_trip_aborts_fan_out() {
        let database = db();
        let updates = generate_support(
            &database,
            &SupportConfig {
                size: 300,
                ..Default::default()
            },
        );
        let q = prepare_query(&database, "select * from T").unwrap();
        // An already-expired deadline trips on the first execution of
        // whichever worker gets there first; the pool must abort promptly
        // and surface BudgetExceeded rather than hang or panic.
        let budget = ExecBudget::default().with_timeout(Duration::ZERO);
        let err = disagreements_nbrs(
            &database,
            &q,
            &updates,
            &vec![true; updates.len()],
            budget,
            4,
            &Telemetry::disabled(),
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::BudgetExceeded { .. }),
            "expected BudgetExceeded, got {err:?}"
        );
    }

    #[test]
    fn run_indexed_returns_lowest_index_error() {
        // Deterministic error selection: index 7 and 200 both fail; the
        // lowest must win no matter which worker hits which first.
        for _ in 0..8 {
            let err = run_indexed(
                256,
                4,
                || (),
                |_, i| {
                    if i == 7 || i == 200 {
                        Err(EngineError::Eval(format!("boom {i}")))
                    } else {
                        Ok(i)
                    }
                },
                &Telemetry::disabled(),
            )
            .unwrap_err();
            // Index 7 is in the very first chunk, claimed before any
            // worker can reach 200 and stop the pool.
            assert!(err.to_string().ends_with("boom 7"), "{err}");
        }
    }
}
