//! Query-shape analysis for the disagreement optimizer (§4).
//!
//! A prepared query is classified into one of three shapes:
//!
//! * [`Shape::Spj`] — a select-project-join block without self-joins,
//!   subqueries, `DISTINCT`, `LIMIT`, or aggregation: eligible for
//!   Algorithm 4/6 static checks and §4.2 batching;
//! * [`Shape::Agg`] — `γ_{G, agg…}(SPJ core)` without `HAVING`, `LIMIT`, or
//!   `DISTINCT` aggregates: eligible for Algorithm 5;
//! * [`Shape::Opaque`] — anything else: priced by re-executing the query per
//!   support instance (Algorithms 1–3 verbatim).
//!
//! Shape extraction happens once per query at prepare time; it derives the
//! auxiliary plans the optimizer executes:
//!
//! * the **keyed query** `Q̂` projecting every base relation's primary key —
//!   one execution per pricing call yields the *contributing tuple* sets
//!   (line 7 of Algorithm 4, line 9 of Algorithm 5);
//! * per-relation **probe plans** with a synthetic trailing `upid` column —
//!   the widened `R⁺` relation of §4.2 over which batched dynamic checks
//!   run;
//! * for aggregates, the **group table** `(group key → aggregate values)`
//!   and the **unrolled probe** projecting group keys and aggregate
//!   arguments.
//!
//! All agreement in this crate is **bag agreement of the projected rows**:
//! the fingerprint ignores display order (`ORDER BY` cannot change content
//! without changing the bag), matching the paper's `h(Q(D))` treatment.

use qirana_sqlengine::plan::Projection;
use qirana_sqlengine::{Database, EngineError, Fingerprint, PExpr, PRelation, ResolvedSelect};
use std::collections::HashSet;

/// A query prepared for pricing.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Original SQL text.
    pub sql: String,
    /// The resolved plan, executed verbatim for answers and naive pricing.
    pub plan: ResolvedSelect,
    /// The optimizer shape.
    pub shape: Shape,
    /// Structural fingerprint of `plan` — the key under which
    /// [`crate::cache::PricingCache`] memoizes this query's pricing
    /// artifacts. Two SQL strings resolving to the same plan share it.
    pub plan_fp: Fingerprint,
}

/// Optimizer classification of a query.
#[derive(Debug, Clone)]
pub enum Shape {
    /// SPJ normal form `π_A σ_C (R₁ × … × R_ℓ)`.
    Spj(Box<SpjShape>),
    /// Aggregate normal form `γ_{G, aggs}(SPJ core)`.
    Agg(Box<AggShape>),
    /// No normal form; priced naively. Carries the set of base tables the
    /// query (transitively) references so untouched relations still short-
    /// circuit to "agrees".
    Opaque { referenced_tables: HashSet<usize> },
}

/// Per-base-relation metadata shared by both shapes.
#[derive(Debug, Clone)]
pub struct RelShape {
    /// Position in `plan.relations`.
    pub rel_idx: usize,
    /// Catalog table index.
    pub table: usize,
    /// Slot offset of the relation within the joined row.
    pub offset: usize,
    /// Relation arity (original, before any `upid` widening).
    pub arity: usize,
    /// Primary-key column indices in the table schema.
    pub pk_cols: Vec<usize>,
    /// WHERE conjuncts that reference only this relation, rebased to
    /// local (0-based) slots — the `C[u]` of Algorithm 4's static check.
    pub local_condition: Vec<PExpr>,
    /// Local columns the query reads at all (filter + output expressions).
    /// An update confined to other columns is *irrelevant* — the query
    /// cannot observe it (Blakeley et al.'s irrelevant-update test, which
    /// §6 cites as the inspiration for the static checks).
    pub referenced_cols: HashSet<usize>,
    /// Local columns appearing in WHERE conjuncts that span more than one
    /// relation. An update avoiding these preserves every tuple's join
    /// multiplicity, unlocking the exact aggregate delta analysis.
    pub join_cols: HashSet<usize>,
    /// Probe plan with this relation widened by a trailing `upid` column,
    /// projecting the original output columns plus `upid` (§4.2). The
    /// `upid` is the last projection.
    pub probe: ResolvedSelect,
}

/// SPJ shape (Algorithm 4/6 + batching).
#[derive(Debug, Clone)]
pub struct SpjShape {
    /// The keyed query `Q̂`: same FROM/WHERE, projecting all primary keys.
    pub keyed: ResolvedSelect,
    /// Output-column ranges of each relation's key within `keyed`.
    pub keyed_ranges: Vec<std::ops::Range<usize>>,
    /// Per-relation shapes, in FROM order.
    pub relations: Vec<RelShape>,
    /// Global slots projected *verbatim* (bare `Slot` projections) — the
    /// `A` of the exact `B ∩ A ≠ ∅` static disagreement for row updates.
    pub identity_projected_slots: HashSet<usize>,
}

/// Aggregate shape (Algorithm 5).
#[derive(Debug, Clone)]
pub struct AggShape {
    /// The keyed query over the unrolled core (same FROM/WHERE).
    pub keyed: ResolvedSelect,
    /// Output-column ranges of each relation's key within `keyed`.
    pub keyed_ranges: Vec<std::ops::Range<usize>>,
    /// Per-relation shapes. `RelShape::probe` here is the *unrolled* probe:
    /// it projects the group-key expressions, then the aggregate argument
    /// expressions, then `upid`.
    pub relations: Vec<RelShape>,
    /// The group table plan: `SELECT group keys, agg values ... GROUP BY`.
    pub group_table: ResolvedSelect,
    /// Number of group-by expressions.
    pub num_group_keys: usize,
    /// For each aggregate spec `j`, the index of its argument among the
    /// probe's argument columns (`None` for `COUNT(*)`).
    pub agg_arg_cols: Vec<Option<usize>>,
    /// Global slots referenced by the group-key expressions — the `G` of
    /// Algorithm 5's `B ∩ G` check.
    pub group_slots: HashSet<usize>,
    /// True iff the query computes `COUNT(*)`, which makes several static
    /// checks exact (any row movement changes a count).
    pub has_count_star: bool,
    /// Aggregate functions, aligned with `agg_arg_cols`.
    pub agg_funcs: Vec<qirana_sqlengine::ast::AggFunc>,
    /// Per relation (by `rel_idx`): the group-key expressions rebased to
    /// that relation's local slots, when *every* group expression reads
    /// only that relation — then a tuple's group is a pure function of the
    /// tuple and group-key movement can be decided statically.
    pub local_group_exprs: Vec<Option<Vec<PExpr>>>,
    /// Index (within a group-cache value vector) of the hidden `COUNT(*)`
    /// bookkeeping aggregate appended to `group_table`.
    pub hidden_count_col: usize,
    /// For each visible aggregate `j` with an argument, the index of its
    /// hidden `COUNT(arg)` (non-null count) bookkeeping column.
    pub hidden_nonnull_cols: Vec<Option<usize>>,
}

impl Prepared {
    /// Base tables touched by the query (for the "relation not in query"
    /// short-circuit, valid for every shape).
    pub fn referenced_tables(&self) -> HashSet<usize> {
        match &self.shape {
            Shape::Spj(s) => s.relations.iter().map(|r| r.table).collect(),
            Shape::Agg(s) => s.relations.iter().map(|r| r.table).collect(),
            Shape::Opaque { referenced_tables } => referenced_tables.clone(),
        }
    }
}

/// Prepares a SQL query for pricing: parse, plan, classify.
pub fn prepare_query(db: &Database, sql: &str) -> Result<Prepared, EngineError> {
    let plan = qirana_sqlengine::prepare(db, sql)?;
    let shape = classify(db, &plan);
    let plan_fp = plan_fingerprint(&plan);
    Ok(Prepared {
        sql: sql.to_string(),
        plan,
        shape,
        plan_fp,
    })
}

/// Structural fingerprint of a resolved plan, used as the pricing-cache
/// key. The plan's `Debug` rendering is a deterministic structural
/// serialization (plan nodes hold no hash-ordered containers), streamed
/// through two independently seeded splitmix64 lanes — no intermediate
/// string is materialized. A collision would price one query as another,
/// but at 128 bits the birthday bound across any realistic number of
/// distinct plans is negligible (same argument as the output fingerprints
/// in `qirana-sqlengine`).
pub fn plan_fingerprint(plan: &ResolvedSelect) -> Fingerprint {
    use std::fmt::Write;

    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    struct Lanes {
        lo: u64,
        hi: u64,
        pending: u64,
        filled: u32,
    }

    impl Lanes {
        fn word(&mut self, w: u64) {
            self.lo = mix(self.lo ^ w);
            self.hi = mix(self.hi.rotate_left(29) ^ w.wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        }
    }

    impl Write for Lanes {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for &b in s.as_bytes() {
                self.pending |= u64::from(b) << (8 * self.filled);
                self.filled += 1;
                if self.filled == 8 {
                    let w = self.pending;
                    self.pending = 0;
                    self.filled = 0;
                    self.word(w);
                }
            }
            Ok(())
        }
    }

    let mut lanes = Lanes {
        lo: 0x9e37_79b9_7f4a_7c15,
        hi: 0x85eb_ca6b_c2b2_ae35,
        pending: 0,
        filled: 0,
    };
    // Infallible: Lanes::write_str never errors.
    let _ = write!(&mut lanes, "{plan:?}");
    // Length-tagged tail word so "ab" + empty tail and "a" + "b" differ.
    let tail = lanes.pending | (u64::from(lanes.filled) + 1) << 56;
    lanes.word(tail);
    Fingerprint((u128::from(lanes.hi) << 64) | u128::from(lanes.lo))
}

/// Collects every base table referenced by a plan, descending into derived
/// tables and subqueries.
pub fn referenced_tables(plan: &ResolvedSelect) -> HashSet<usize> {
    let mut out = HashSet::new();
    collect_tables(plan, &mut out);
    out
}

fn collect_tables(plan: &ResolvedSelect, out: &mut HashSet<usize>) {
    for rel in &plan.relations {
        match rel {
            PRelation::Base { table, .. } => {
                out.insert(*table);
            }
            PRelation::Derived { plan, .. } => collect_tables(plan, out),
        }
    }
    let exprs = plan
        .filter
        .iter()
        .chain(plan.group_by.iter())
        .chain(plan.aggregates.iter().filter_map(|a| a.arg.as_ref()))
        .chain(plan.having.iter())
        .chain(plan.projections.iter().map(|p| &p.expr))
        .chain(plan.order_by.iter().map(|(e, _)| e));
    for e in exprs {
        collect_expr_tables(e, out);
    }
}

fn collect_expr_tables(e: &PExpr, out: &mut HashSet<usize>) {
    match e {
        PExpr::InSubquery { expr, plan, .. } => {
            collect_expr_tables(expr, out);
            collect_tables(plan, out);
        }
        PExpr::Exists { plan, .. } | PExpr::ScalarSubquery(plan) => collect_tables(plan, out),
        other => other.walk(&mut |sub| {
            // walk doesn't descend into subqueries, so recurse manually on
            // the subquery-bearing nodes it surfaces.
            match sub {
                PExpr::InSubquery { plan, .. }
                | PExpr::Exists { plan, .. }
                | PExpr::ScalarSubquery(plan) => collect_tables(plan, out),
                _ => {}
            }
        }),
    }
}

/// Classifies a plan into its optimizer shape.
pub fn classify(db: &Database, plan: &ResolvedSelect) -> Shape {
    let opaque = || Shape::Opaque {
        referenced_tables: referenced_tables(plan),
    };

    // Structural exclusions shared by both normal forms.
    if plan.relations.is_empty() || plan.has_subquery() || plan.distinct || plan.limit.is_some() {
        return opaque();
    }
    let mut tables = Vec::new();
    for rel in &plan.relations {
        match rel {
            PRelation::Base { table, .. } => tables.push(*table),
            PRelation::Derived { .. } => return opaque(),
        }
    }
    // Self-joins are outside the paper's optimized class.
    let mut uniq = tables.clone();
    uniq.sort_unstable();
    uniq.dedup();
    if uniq.len() != tables.len() {
        return opaque();
    }
    // Primary keys per relation: needed to identify tuples.
    let pk_cols: Vec<Vec<usize>> = tables
        .iter()
        .map(|&t| db.table_at(t).schema.primary_key.clone())
        .collect();
    if pk_cols.iter().any(|p| p.is_empty()) {
        return opaque();
    }

    if !plan.grouped {
        return classify_spj(plan, &tables, &pk_cols);
    }

    // Aggregate shape exclusions.
    if plan.having.is_some() || plan.aggregates.iter().any(|a| a.distinct) {
        return opaque();
    }
    classify_agg(plan, &tables, &pk_cols)
}

/// Builds the keyed plan (project all primary keys) plus per-relation output
/// ranges.
fn build_keyed(
    plan: &ResolvedSelect,
    db_free_pks: &[Vec<usize>],
) -> (ResolvedSelect, Vec<std::ops::Range<usize>>) {
    let mut keyed = plan.clone();
    keyed.grouped = false;
    keyed.group_by.clear();
    keyed.aggregates.clear();
    keyed.having = None;
    keyed.distinct = false;
    keyed.order_by.clear();
    keyed.limit = None;
    keyed.projections.clear();
    let mut ranges = Vec::with_capacity(db_free_pks.len());
    for (rel_idx, pks) in db_free_pks.iter().enumerate() {
        let start = keyed.projections.len();
        for &pk in pks {
            keyed.projections.push(Projection {
                expr: PExpr::Slot(plan.offsets[rel_idx] + pk),
                name: format!("pk_{rel_idx}_{pk}"),
            });
        }
        ranges.push(start..keyed.projections.len());
    }
    (keyed, ranges)
}

/// Extracts the per-relation local WHERE conjuncts, rebased to local slots.
fn local_conditions(plan: &ResolvedSelect) -> Vec<Vec<PExpr>> {
    let n = plan.relations.len();
    let mut out = vec![Vec::new(); n];
    let Some(filter) = plan.filter.clone() else {
        return out;
    };
    for c in filter.conjuncts() {
        if c.has_subquery() {
            continue;
        }
        let mut slots = Vec::new();
        c.collect_slots(&mut slots);
        if slots.is_empty() {
            continue;
        }
        // `offsets` always contains 0, so every slot has a home relation.
        #[allow(clippy::unwrap_used)]
        let rel_of = |s: usize| plan.offsets.iter().rposition(|&o| o <= s).unwrap(); // qirana-lint::allow(QL007): offsets[0] == 0 gives every slot a home
        let first = rel_of(slots[0]);
        if slots.iter().all(|&s| rel_of(s) == first) {
            let mut local = c.clone();
            let offset = plan.offsets[first];
            local.map_slots(&mut |s| s - offset);
            out[first].push(local);
        }
    }
    out
}

fn rel_shapes(
    plan: &ResolvedSelect,
    tables: &[usize],
    pk_cols: &[Vec<usize>],
    probe_template: &ResolvedSelect,
) -> Vec<RelShape> {
    let locals = local_conditions(plan);

    // Global slots the template reads (filter + output expressions). The
    // template's projections already include group keys and aggregate
    // arguments for the aggregate shape.
    let mut read_slots: Vec<usize> = Vec::new();
    if let Some(f) = &probe_template.filter {
        f.collect_slots(&mut read_slots);
    }
    for p in &probe_template.projections {
        p.expr.collect_slots(&mut read_slots);
    }

    // Global slots appearing in conjuncts that span multiple relations.
    let mut multi_rel_slots: Vec<usize> = Vec::new();
    if let Some(f) = plan.filter.clone() {
        // `offsets` always contains 0, so every slot has a home relation.
        #[allow(clippy::unwrap_used)]
        let rel_of = |s: usize| plan.offsets.iter().rposition(|&o| o <= s).unwrap(); // qirana-lint::allow(QL007): offsets[0] == 0 gives every slot a home
        for c in f.conjuncts() {
            if c.has_subquery() {
                continue;
            }
            let mut slots = Vec::new();
            c.collect_slots(&mut slots);
            if let Some(&first) = slots.first() {
                if slots.iter().any(|&s| rel_of(s) != rel_of(first)) {
                    multi_rel_slots.extend(slots);
                }
            }
        }
    }

    tables
        .iter()
        .enumerate()
        .map(|(rel_idx, &table)| {
            let mut probe = probe_template.clone();
            let upid = probe.append_column(rel_idx);
            probe.projections.push(Projection {
                expr: PExpr::Slot(upid),
                name: "upid".into(),
            });
            let offset = plan.offsets[rel_idx];
            let arity = plan.relations[rel_idx].arity();
            let referenced_cols: HashSet<usize> = read_slots
                .iter()
                .filter(|&&s| s >= offset && s < offset + arity)
                .map(|&s| s - offset)
                .collect();
            let join_cols: HashSet<usize> = multi_rel_slots
                .iter()
                .filter(|&&s| s >= offset && s < offset + arity)
                .map(|&s| s - offset)
                .collect();
            RelShape {
                rel_idx,
                table,
                offset,
                arity,
                pk_cols: pk_cols[rel_idx].clone(),
                local_condition: locals[rel_idx].clone(),
                referenced_cols,
                join_cols,
                probe,
            }
        })
        .collect()
}

fn classify_spj(plan: &ResolvedSelect, tables: &[usize], pk_cols: &[Vec<usize>]) -> Shape {
    let (keyed, keyed_ranges) = build_keyed(plan, pk_cols);

    // Probe plan: the original projection, bag-compared (order dropped).
    let mut probe_template = plan.clone();
    probe_template.order_by.clear();

    let relations = rel_shapes(plan, tables, pk_cols, &probe_template);

    // Slots projected verbatim — exact `B ∩ A` carrier for row updates.
    let identity_projected_slots: HashSet<usize> = plan
        .projections
        .iter()
        .filter_map(|p| match &p.expr {
            PExpr::Slot(s) => Some(*s),
            _ => None,
        })
        .collect();

    Shape::Spj(Box::new(SpjShape {
        keyed,
        keyed_ranges,
        relations,
        identity_projected_slots,
    }))
}

fn classify_agg(plan: &ResolvedSelect, tables: &[usize], pk_cols: &[Vec<usize>]) -> Shape {
    let (keyed, keyed_ranges) = build_keyed(plan, pk_cols);

    // Group table: group keys followed by every aggregate's value.
    let mut group_table = plan.clone();
    group_table.having = None;
    group_table.order_by.clear();
    group_table.limit = None;
    group_table.distinct = false;
    group_table.projections = plan
        .group_by
        .iter()
        .enumerate()
        .map(|(i, g)| Projection {
            expr: g.clone(),
            name: format!("g{i}"),
        })
        .collect();
    for (j, _) in plan.aggregates.iter().enumerate() {
        group_table.projections.push(Projection {
            expr: PExpr::AggRef(j),
            name: format!("agg{j}"),
        });
    }

    // Hidden bookkeeping aggregates: group row count + per-argument
    // non-null counts, consumed by the exact delta analyses in
    // `crate::optimized` (they decide NULL transitions and group
    // disappearance without rerunning the query).
    let hidden_count_col = group_table.aggregates.len();
    group_table
        .aggregates
        .push(qirana_sqlengine::plan::AggSpec {
            func: qirana_sqlengine::ast::AggFunc::Count,
            arg: None,
            distinct: false,
        });
    group_table.projections.push(Projection {
        expr: PExpr::AggRef(hidden_count_col),
        name: "_rows".into(),
    });
    let mut hidden_nonnull_cols = Vec::with_capacity(plan.aggregates.len());
    for spec in &plan.aggregates {
        match &spec.arg {
            Some(a) => {
                let idx = group_table.aggregates.len();
                group_table
                    .aggregates
                    .push(qirana_sqlengine::plan::AggSpec {
                        func: qirana_sqlengine::ast::AggFunc::Count,
                        arg: Some(a.clone()),
                        distinct: false,
                    });
                group_table.projections.push(Projection {
                    expr: PExpr::AggRef(idx),
                    name: format!("_nn{idx}"),
                });
                hidden_nonnull_cols.push(Some(idx));
            }
            None => hidden_nonnull_cols.push(None),
        }
    }

    // Unrolled probe template: group keys then aggregate arguments, as a
    // plain SPJ projection (arguments are row-context expressions).
    let mut unrolled = plan.clone();
    unrolled.grouped = false;
    unrolled.group_by.clear();
    unrolled.aggregates.clear();
    unrolled.having = None;
    unrolled.order_by.clear();
    unrolled.limit = None;
    unrolled.distinct = false;
    unrolled.projections = plan
        .group_by
        .iter()
        .enumerate()
        .map(|(i, g)| Projection {
            expr: g.clone(),
            name: format!("g{i}"),
        })
        .collect();
    let mut agg_arg_cols = Vec::with_capacity(plan.aggregates.len());
    let mut next_arg = 0usize;
    for spec in &plan.aggregates {
        match &spec.arg {
            Some(a) => {
                unrolled.projections.push(Projection {
                    expr: a.clone(),
                    name: format!("arg{next_arg}"),
                });
                agg_arg_cols.push(Some(next_arg));
                next_arg += 1;
            }
            None => agg_arg_cols.push(None),
        }
    }

    let relations = rel_shapes(plan, tables, pk_cols, &unrolled);

    let mut group_slots = HashSet::new();
    for g in &plan.group_by {
        let mut slots = Vec::new();
        g.collect_slots(&mut slots);
        group_slots.extend(slots);
    }

    let has_count_star = plan
        .aggregates
        .iter()
        .any(|a| a.func == qirana_sqlengine::ast::AggFunc::Count && a.arg.is_none());

    let local_group_exprs = relations
        .iter()
        .map(|rel| {
            let in_rel = |s: usize| s >= rel.offset && s < rel.offset + rel.arity;
            let all_local = plan.group_by.iter().all(|g| {
                let mut slots = Vec::new();
                g.collect_slots(&mut slots);
                slots.iter().all(|&s| in_rel(s))
            });
            if !all_local {
                return None;
            }
            Some(
                plan.group_by
                    .iter()
                    .map(|g| {
                        let mut local = g.clone();
                        local.map_slots(&mut |s| s - rel.offset);
                        local
                    })
                    .collect(),
            )
        })
        .collect();

    Shape::Agg(Box::new(AggShape {
        keyed,
        keyed_ranges,
        relations,
        group_table,
        num_group_keys: plan.group_by.len(),
        agg_arg_cols,
        group_slots,
        has_count_star,
        agg_funcs: plan.aggregates.iter().map(|a| a.func).collect(),
        local_group_exprs,
        hidden_count_col,
        hidden_nonnull_cols,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![
                vec![1.into(), "m".into(), 25.into()],
                vec![2.into(), "f".into(), 13.into()],
            ],
        );
        db.add_table(
            TableSchema::new(
                "Tweet",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("location", DataType::Str),
                ],
                &["tid"],
            ),
            vec![vec![1.into(), 1.into(), "CA".into()]],
        );
        db
    }

    #[test]
    fn spj_classification() {
        let db = db();
        let p = prepare_query(&db, "select name_x from User where age > 3").err();
        assert!(p.is_some(), "unknown column should fail to plan");
        let p = prepare_query(
            &db,
            "select gender from User U, Tweet T where U.uid = T.uid and T.location = 'CA' and age > 18",
        )
        .unwrap();
        let Shape::Spj(s) = &p.shape else {
            panic!("expected SPJ, got {:?}", p.shape)
        };
        assert_eq!(s.relations.len(), 2);
        // keyed projects uid then tid.
        assert_eq!(s.keyed.projections.len(), 2);
        assert_eq!(s.keyed_ranges, vec![0..1, 1..2]);
        // gender is identity-projected (slot 1 of User).
        assert!(s.identity_projected_slots.contains(&1));
        // local condition on User: age > 18, rebased to local slot 2.
        assert_eq!(s.relations[0].local_condition.len(), 1);
        // local condition on Tweet: location = 'CA'.
        assert_eq!(s.relations[1].local_condition.len(), 1);
        // probe for User carries upid as last projection.
        assert_eq!(
            s.relations[0].probe.projections.last().unwrap().name,
            "upid"
        );
    }

    #[test]
    fn agg_classification() {
        let db = db();
        let p = prepare_query(
            &db,
            "select gender, count(*), avg(age) from User group by gender",
        )
        .unwrap();
        let Shape::Agg(a) = &p.shape else {
            panic!("expected Agg, got {:?}", p.shape)
        };
        assert!(a.has_count_star);
        assert_eq!(a.num_group_keys, 1);
        assert_eq!(a.agg_arg_cols, vec![None, Some(0)]);
        assert!(a.group_slots.contains(&1));
        // group table: gender, count, avg, plus hidden row count and the
        // avg argument's non-null count.
        assert_eq!(a.group_table.projections.len(), 5);
        assert_eq!(a.hidden_count_col, 2);
        assert_eq!(a.hidden_nonnull_cols, vec![None, Some(3)]);
        // unrolled probe projects gender, age, upid.
        assert_eq!(a.relations[0].probe.projections.len(), 3);
    }

    #[test]
    fn opaque_cases() {
        let db = db();
        for sql in [
            "select distinct gender from User",
            "select gender from User limit 1",
            "select gender, count(*) as c from User group by gender having c > 1",
            "select count(distinct gender) from User",
            "select uid from User where uid in (select uid from Tweet)",
            "select avg(c) from (select uid, count(*) as c from Tweet group by uid) as t",
            "select 1",
            "select A.uid from User A, User B where A.uid = B.uid",
        ] {
            let p = prepare_query(&db, sql).unwrap();
            assert!(
                matches!(p.shape, Shape::Opaque { .. }),
                "{sql} should be opaque"
            );
        }
    }

    #[test]
    fn opaque_tracks_referenced_tables_through_subqueries() {
        let db = db();
        let p = prepare_query(
            &db,
            "select uid from User where uid in (select uid from Tweet)",
        )
        .unwrap();
        let refs = p.referenced_tables();
        assert!(refs.contains(&0) && refs.contains(&1));
    }

    #[test]
    fn order_by_does_not_block_shapes() {
        let db = db();
        let p = prepare_query(&db, "select gender from User order by age").unwrap();
        assert!(matches!(p.shape, Shape::Spj(_)));
        let p = prepare_query(
            &db,
            "select gender, count(*) from User group by gender order by gender",
        )
        .unwrap();
        assert!(matches!(p.shape, Shape::Agg(_)));
    }

    #[test]
    fn plan_fingerprint_is_structural() {
        let db = db();
        let a = prepare_query(&db, "select gender from User where age > 18").unwrap();
        let b = prepare_query(&db, "SELECT   gender FROM User WHERE age > 18").unwrap();
        let c = prepare_query(&db, "select gender from User where age > 19").unwrap();
        let d = prepare_query(&db, "select age from User where age > 18").unwrap();
        assert_eq!(a.plan_fp, b.plan_fp, "same plan, same key");
        assert_ne!(a.plan_fp, c.plan_fp, "different constant, different key");
        assert_ne!(a.plan_fp, d.plan_fp, "different projection, different key");
    }

    #[test]
    fn probe_upid_slot_is_past_relation() {
        let db = db();
        let p = prepare_query(
            &db,
            "select location from User U, Tweet T where U.uid = T.uid",
        )
        .unwrap();
        let Shape::Spj(s) = &p.shape else { panic!() };
        // User and Tweet both have 3 columns; widening User (rel 0) shifts
        // Tweet's slots by 1.
        let probe = &s.relations[0].probe;
        assert_eq!(probe.offsets, vec![0, 4]);
        assert_eq!(probe.width, 7);
        // location was global slot 5, now 6.
        assert_eq!(probe.projections[0].expr, PExpr::Slot(6));
        // upid occupies User's new trailing slot 3.
        assert_eq!(probe.projections[1].expr, PExpr::Slot(3));
    }
}
