//! Support-set updates: row updates and swap updates (§3.2).
//!
//! Every element of QIRANA's support set is a *neighboring database* of the
//! stored instance `D`, represented implicitly as an update over `D`:
//!
//! * a **row update** replaces one or more non-key attributes of a single
//!   tuple with different values from the attribute domain (`D' ∈ N¹(D)`);
//! * a **swap update** exchanges one or more attributes between two tuples
//!   of the same relation (`D' ∈ N²(D)`).
//!
//! Both always yield an instance *different from* `D` (the generator in
//! [`crate::support`] guarantees changed values actually change), and both
//! preserve relation cardinalities and primary keys — the constraints that
//! define the possible-worlds set `I` (§3.1).

use qirana_sqlengine::update::{apply_writes, CellWrite};
use qirana_sqlengine::{output_row_hash, Database, Row, Value};

/// One support-set element, as an update over the stored instance.
#[derive(Debug, Clone, PartialEq)]
pub enum SupportUpdate {
    /// Replace attributes of a single tuple.
    Row {
        /// Catalog index of the updated relation.
        table: usize,
        /// Row index within the relation.
        row: usize,
        /// `(column, new value)` pairs; every new value differs from the
        /// stored one.
        changes: Vec<(usize, Value)>,
    },
    /// Exchange attribute values between two tuples of one relation.
    Swap {
        /// Catalog index of the updated relation.
        table: usize,
        /// First row index.
        row_a: usize,
        /// Second row index (≠ `row_a`).
        row_b: usize,
        /// Columns whose values are exchanged; at least one column differs
        /// between the two rows.
        cols: Vec<usize>,
    },
}

impl SupportUpdate {
    /// The relation this update touches.
    pub fn table(&self) -> usize {
        match self {
            SupportUpdate::Row { table, .. } | SupportUpdate::Swap { table, .. } => *table,
        }
    }

    /// The columns this update modifies (the `B` of Algorithms 4–6).
    pub fn changed_columns(&self) -> Vec<usize> {
        match self {
            SupportUpdate::Row { changes, .. } => changes.iter().map(|(c, _)| *c).collect(),
            SupportUpdate::Swap { cols, .. } => cols.clone(),
        }
    }

    /// The columns whose stored values actually change when the update is
    /// applied to `db` — the declared columns minus no-ops (a `Row` change
    /// writing back the stored value, or a `Swap` column on which both rows
    /// agree). This is the footprint the delta evaluator's short-circuit
    /// test must use: [`Self::changed_columns`] over-reports and would
    /// defeat the "changed columns miss the query's column footprint"
    /// optimization.
    pub fn effective_changed_columns(&self, db: &Database) -> Vec<usize> {
        match self {
            SupportUpdate::Row {
                table,
                row,
                changes,
            } => {
                let r = &db.table_at(*table).rows[*row];
                changes
                    .iter()
                    .filter(|(c, v)| r[*c] != *v)
                    .map(|(c, _)| *c)
                    .collect()
            }
            SupportUpdate::Swap {
                table,
                row_a,
                row_b,
                cols,
            } => {
                let t = db.table_at(*table);
                cols.iter()
                    .copied()
                    .filter(|&c| t.rows[*row_a][c] != t.rows[*row_b][c])
                    .collect()
            }
        }
    }

    /// Expands the update into primitive cell writes against `db`.
    pub fn to_writes(&self, db: &Database) -> Vec<CellWrite> {
        match self {
            SupportUpdate::Row {
                table,
                row,
                changes,
            } => changes
                .iter()
                .map(|(col, v)| CellWrite {
                    table: *table,
                    row: *row,
                    col: *col,
                    value: v.clone(),
                })
                .collect(),
            SupportUpdate::Swap {
                table,
                row_a,
                row_b,
                cols,
            } => {
                let t = db.table_at(*table);
                let mut writes = Vec::with_capacity(cols.len() * 2);
                for &c in cols {
                    writes.push(CellWrite {
                        table: *table,
                        row: *row_a,
                        col: c,
                        value: t.rows[*row_b][c].clone(),
                    });
                    writes.push(CellWrite {
                        table: *table,
                        row: *row_b,
                        col: c,
                        value: t.rows[*row_a][c].clone(),
                    });
                }
                writes
            }
        }
    }

    /// Applies the update (`up↑`), returning the undo writes (`up↓`).
    pub fn apply(&self, db: &mut Database) -> Vec<CellWrite> {
        let writes = self.to_writes(db);
        apply_writes(db, &writes)
    }

    /// The removed and inserted tuples `(u⁻ set, u⁺ set)`: one pair for a
    /// row update, two for a swap.
    pub fn old_new_rows(&self, db: &Database) -> (Vec<Row>, Vec<Row>) {
        match self {
            SupportUpdate::Row {
                table,
                row,
                changes,
            } => {
                let old = db.table_at(*table).rows[*row].clone();
                let mut new = old.clone();
                for (c, v) in changes {
                    new[*c] = v.clone();
                }
                (vec![old], vec![new])
            }
            SupportUpdate::Swap {
                table,
                row_a,
                row_b,
                cols,
            } => {
                let t = db.table_at(*table);
                let old_a = t.rows[*row_a].clone();
                let old_b = t.rows[*row_b].clone();
                let mut new_a = old_a.clone();
                let mut new_b = old_b.clone();
                for &c in cols {
                    new_a[c] = old_b[c].clone();
                    new_b[c] = old_a[c].clone();
                }
                (vec![old_a, old_b], vec![new_a, new_b])
            }
        }
    }

    /// A canonical fingerprint of the *database instance* this update
    /// produces: two updates yield the same neighboring database iff their
    /// signatures match (no-op cell writes are dropped, writes are sorted).
    /// The broker uses this to build the partition induced by the
    /// full-dataset bundle `Q_all`, which anchors the entropy-family price
    /// scaling at exactly `P`.
    /// Signatures are persisted transitively (entropy-family partitions
    /// feed ledgered prices), so the hash must be stable across toolchains:
    /// `DefaultHasher` is explicitly unstable between Rust releases, hence
    /// the fingerprint-grade `output_row_hash` (splitmix64-based, with the
    /// same lossless value canonicalization as result fingerprints — equal
    /// cell values hash equally even across Int/Float representations).
    pub fn signature(&self, db: &Database) -> u64 {
        let mut writes: Vec<CellWrite> = self
            .to_writes(db)
            .into_iter()
            .filter(|w| db.table_at(w.table).rows[w.row][w.col] != w.value)
            .collect();
        writes.sort_by_key(|w| (w.table, w.row, w.col));
        let mut acc: u128 = 0x5153_4cb9;
        for w in &writes {
            let h = output_row_hash(&[
                Value::Int(w.table as i64),
                Value::Int(w.row as i64),
                Value::Int(w.col as i64),
                w.value.clone(),
            ]);
            // Order-sensitive chain over the canonically sorted writes.
            acc = acc.rotate_left(7) ^ h;
        }
        (acc as u64) ^ ((acc >> 64) as u64)
    }

    /// True iff applying the update would actually change the database
    /// (swap updates degenerate when both rows agree on all swapped
    /// columns; the generator filters these, but validation code checks).
    pub fn is_effective(&self, db: &Database) -> bool {
        match self {
            SupportUpdate::Row {
                table,
                row,
                changes,
            } => {
                let r = &db.table_at(*table).rows[*row];
                changes.iter().any(|(c, v)| r[*c] != *v)
            }
            SupportUpdate::Swap {
                table,
                row_a,
                row_b,
                cols,
            } => {
                let t = db.table_at(*table);
                cols.iter().any(|&c| t.rows[*row_a][c] != t.rows[*row_b][c])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![
                vec![1.into(), "m".into(), 25.into()],
                vec![2.into(), "f".into(), 13.into()],
                vec![3.into(), "m".into(), 45.into()],
            ],
        );
        db
    }

    #[test]
    fn row_update_apply_undo() {
        let mut db = db();
        let before = db.table_at(0).rows.clone();
        let up = SupportUpdate::Row {
            table: 0,
            row: 0,
            changes: vec![(1, "f".into()), (2, 30.into())],
        };
        let undo = up.apply(&mut db);
        assert_eq!(
            db.table_at(0).rows[0],
            vec![1.into(), "f".into(), 30.into()]
        );
        apply_writes(&mut db, &undo);
        assert_eq!(db.table_at(0).rows, before);
    }

    #[test]
    fn swap_update_apply_undo() {
        let mut db = db();
        let before = db.table_at(0).rows.clone();
        let up = SupportUpdate::Swap {
            table: 0,
            row_a: 0,
            row_b: 2,
            cols: vec![2],
        };
        let undo = up.apply(&mut db);
        assert_eq!(db.table_at(0).rows[0][2], Value::Int(45));
        assert_eq!(db.table_at(0).rows[2][2], Value::Int(25));
        apply_writes(&mut db, &undo);
        assert_eq!(db.table_at(0).rows, before);
    }

    #[test]
    fn old_new_rows_for_row_update() {
        let db = db();
        let up = SupportUpdate::Row {
            table: 0,
            row: 1,
            changes: vec![(2, 99.into())],
        };
        let (old, new) = up.old_new_rows(&db);
        assert_eq!(old, vec![vec![2.into(), "f".into(), 13.into()]]);
        assert_eq!(new, vec![vec![2.into(), "f".into(), 99.into()]]);
    }

    #[test]
    fn old_new_rows_for_swap() {
        let db = db();
        let up = SupportUpdate::Swap {
            table: 0,
            row_a: 0,
            row_b: 1,
            cols: vec![1, 2],
        };
        let (old, new) = up.old_new_rows(&db);
        assert_eq!(old.len(), 2);
        assert_eq!(new[0], vec![1.into(), "f".into(), 13.into()]);
        assert_eq!(new[1], vec![2.into(), "m".into(), 25.into()]);
    }

    #[test]
    fn effectiveness() {
        let db = db();
        let noop_swap = SupportUpdate::Swap {
            table: 0,
            row_a: 0,
            row_b: 2,
            cols: vec![1], // both 'm'
        };
        assert!(!noop_swap.is_effective(&db));
        let real_swap = SupportUpdate::Swap {
            table: 0,
            row_a: 0,
            row_b: 2,
            cols: vec![1, 2], // ages differ
        };
        assert!(real_swap.is_effective(&db));
        let noop_row = SupportUpdate::Row {
            table: 0,
            row: 0,
            changes: vec![(1, "m".into())],
        };
        assert!(!noop_row.is_effective(&db));
    }

    #[test]
    fn changed_columns_reported() {
        let up = SupportUpdate::Row {
            table: 0,
            row: 0,
            changes: vec![(1, "f".into()), (2, 1.into())],
        };
        assert_eq!(up.changed_columns(), vec![1, 2]);
    }

    #[test]
    fn effective_changed_columns_drop_noops() {
        let db = db();
        // Row 0 is (1, "m", 25): writing "m" back to col 1 is a no-op.
        let up = SupportUpdate::Row {
            table: 0,
            row: 0,
            changes: vec![(1, "m".into()), (2, 30.into())],
        };
        assert_eq!(up.changed_columns(), vec![1, 2]);
        assert_eq!(up.effective_changed_columns(&db), vec![2]);
        // Rows 0 and 2 agree on gender but differ on age.
        let swap = SupportUpdate::Swap {
            table: 0,
            row_a: 0,
            row_b: 2,
            cols: vec![1, 2],
        };
        assert_eq!(swap.changed_columns(), vec![1, 2]);
        assert_eq!(swap.effective_changed_columns(&db), vec![2]);
    }

    #[test]
    fn signature_is_stable_and_canonical() {
        let db = db();
        // Pinned value: the signature feeds ledgered partitions, so it must
        // not drift across toolchain bumps (the old DefaultHasher-based
        // implementation had no such guarantee).
        let up = SupportUpdate::Row {
            table: 0,
            row: 1,
            changes: vec![(2, 99.into())],
        };
        let s = up.signature(&db);
        assert_eq!(s, up.signature(&db));
        // Writing the stored value is dropped: the signature equals that of
        // the update without the no-op write.
        let with_noop = SupportUpdate::Row {
            table: 0,
            row: 1,
            changes: vec![(1, "f".into()), (2, 99.into())],
        };
        assert_eq!(with_noop.signature(&db), s);
        // Int/Float cells that compare equal produce identical instances,
        // hence identical signatures.
        let as_float = SupportUpdate::Row {
            table: 0,
            row: 1,
            changes: vec![(2, Value::Float(99.0))],
        };
        assert_eq!(as_float.signature(&db), s);
        // A different target cell must (overwhelmingly) differ.
        let other = SupportUpdate::Row {
            table: 0,
            row: 0,
            changes: vec![(2, 99.into())],
        };
        assert_ne!(other.signature(&db), s);
    }
}
