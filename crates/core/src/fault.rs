//! Deterministic fault injection for robustness testing.
//!
//! Named **failpoints** are placed on the broker's critical paths (support
//! generation, weight assignment, query execution, ledger appends and
//! snapshots). In production nothing
//! is armed and every check is a single relaxed atomic load of a global
//! counter — effectively free. Tests arm failpoints through
//! [`arm`]/[`reset`] and drive the degradation machinery end to end:
//!
//! ```
//! use qirana_core::fault;
//!
//! let _guard = fault::serialize_tests(); // registry is process-global
//! fault::arm(fault::WEIGHTS_ASSIGN, fault::Trigger::Once);
//! assert!(fault::check(fault::WEIGHTS_ASSIGN).is_err()); // fires
//! assert!(fault::check(fault::WEIGHTS_ASSIGN).is_ok());  // disarmed
//! fault::reset();
//! ```
//!
//! Triggers are deterministic — [`Trigger::Always`], [`Trigger::Once`],
//! [`Trigger::Nth`] (fire on the n-th hit), and [`Trigger::SeededRatio`]
//! (a seeded counter-hash; the same arm always fires on the same hit
//! sequence) — so failing runs replay exactly.
//!
//! The ledger additionally supports a **byte-granular crash budget**
//! ([`arm_ledger_crash`]): once the armed number of append-stream bytes
//! has reached disk, the write in flight is cut short at exactly that
//! byte, simulating a torn write from a crash mid-`write(2)`. The crash
//! matrix in `tests/crash_matrix.rs` sweeps this budget over every byte
//! offset of a recorded session.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Failpoint in [`crate::support::generate_support`] / uniform-world
/// generation, before any sampling work.
pub const SUPPORT_GENERATE: &str = "support::generate";
/// Failpoint at the head of weight assignment (the solver call).
pub const WEIGHTS_ASSIGN: &str = "weights::assign";
/// Failpoint at the head of disagreement/partition evaluation — every
/// quote's engine work passes through it.
pub const ENGINE_EXECUTE: &str = "engine::execute";
/// Failpoint in the broker's `buy` path, before the purchased query runs.
pub const BROKER_BUY: &str = "broker::buy";
/// Failpoint at the head of a ledger record append, before any bytes reach
/// the log — a record-granular crash point (abort between records).
pub const LEDGER_APPEND: &str = "ledger::append";
/// Failpoint at the head of a ledger snapshot, before the snapshot file is
/// written.
pub const LEDGER_SNAPSHOT: &str = "ledger::snapshot";

/// When an armed failpoint fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Every hit fires.
    Always,
    /// The first hit fires, then the failpoint disarms itself.
    Once,
    /// Hit number `n` fires (1-based), once.
    Nth(u64),
    /// Fires on roughly `num`-in-`den` hits, chosen by a seeded hash of the
    /// hit counter — deterministic for a given `(seed, hit sequence)`.
    SeededRatio { seed: u64, num: u64, den: u64 },
}

/// An injected failure, carrying the failpoint that fired and its hit
/// number at the time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    pub failpoint: &'static str,
    pub hit: u64,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failpoint {} fired on hit {}", self.failpoint, self.hit)
    }
}

impl std::error::Error for InjectedFault {}

struct Armed {
    trigger: Trigger,
    hits: u64,
    fired: u64,
}

struct Registry {
    points: HashMap<&'static str, Armed>,
}

/// Count of armed failpoints; the `check` fast path is a single relaxed
/// load of this, skipping the registry mutex entirely when zero.
static ARMED_COUNT: AtomicUsize = AtomicUsize::new(0);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            points: HashMap::new(),
        })
    })
}

fn lock() -> MutexGuard<'static, Registry> {
    // A panic while holding the registry lock (e.g. a test assertion in a
    // failure-path test) must not poison fault injection for every later
    // test in the process.
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Arms `failpoint` with `trigger`, replacing any previous arming.
pub fn arm(failpoint: &'static str, trigger: Trigger) {
    let mut reg = lock();
    if reg
        .points
        .insert(
            failpoint,
            Armed {
                trigger,
                hits: 0,
                fired: 0,
            },
        )
        .is_none()
    {
        ARMED_COUNT.fetch_add(1, Ordering::Relaxed);
    }
}

/// Disarms a single failpoint.
pub fn disarm(failpoint: &'static str) {
    let mut reg = lock();
    if reg.points.remove(failpoint).is_some() {
        ARMED_COUNT.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Disarms everything, including any armed ledger crash budget.
pub fn reset() {
    let mut reg = lock();
    let n = reg.points.len();
    reg.points.clear();
    ARMED_COUNT.fetch_sub(n, Ordering::Relaxed);
    disarm_ledger_crash();
}

/// Remaining byte budget for ledger append writes; `u64::MAX` means the
/// crash point is disarmed and appends are unrestricted.
static LEDGER_CRASH_BUDGET: AtomicU64 = AtomicU64::new(u64::MAX);

/// Arms the ledger crash point: exactly `bytes` more bytes of the ledger's
/// append stream reach disk, then the write in flight is cut short — the
/// deterministic analogue of the process dying mid-`write(2)` at that byte.
pub fn arm_ledger_crash(bytes: u64) {
    LEDGER_CRASH_BUDGET.store(bytes, Ordering::SeqCst);
}

/// Disarms the ledger crash point.
pub fn disarm_ledger_crash() {
    LEDGER_CRASH_BUDGET.store(u64::MAX, Ordering::SeqCst);
}

/// Whether a ledger crash budget is currently armed.
pub fn ledger_crash_armed() -> bool {
    LEDGER_CRASH_BUDGET.load(Ordering::SeqCst) != u64::MAX
}

/// Consumes ledger crash budget for a `len`-byte append. `None` means the
/// crash point is disarmed: write everything. `Some(n)` means only the
/// first `n` bytes may be written (`n < len` simulates a torn write; the
/// caller must then treat the ledger as crashed).
pub fn ledger_write_quota(len: usize) -> Option<usize> {
    let res = LEDGER_CRASH_BUDGET.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
        if cur == u64::MAX {
            None
        } else {
            Some(cur.saturating_sub(len as u64))
        }
    });
    match res {
        Err(_) => None,
        Ok(prev) => Some(prev.min(len as u64) as usize),
    }
}

/// Times `failpoint` fired since it was last armed (0 if not armed).
pub fn fired_count(failpoint: &str) -> u64 {
    lock().points.get(failpoint).map_or(0, |a| a.fired)
}

/// Times `failpoint` was hit (checked) since it was last armed.
pub fn hit_count(failpoint: &str) -> u64 {
    lock().points.get(failpoint).map_or(0, |a| a.hits)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checks a failpoint: `Err(InjectedFault)` when armed and its trigger
/// fires, `Ok(())` otherwise. With nothing armed anywhere this is one
/// relaxed atomic load.
pub fn check(failpoint: &'static str) -> Result<(), InjectedFault> {
    if ARMED_COUNT.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    let mut reg = lock();
    let Some(armed) = reg.points.get_mut(failpoint) else {
        return Ok(());
    };
    armed.hits += 1;
    let hit = armed.hits;
    let fires = match armed.trigger {
        Trigger::Always => true,
        Trigger::Once => hit == 1,
        Trigger::Nth(n) => hit == n,
        Trigger::SeededRatio { seed, num, den } => den > 0 && splitmix(seed ^ hit) % den < num,
    };
    if !fires {
        return Ok(());
    }
    armed.fired += 1;
    if matches!(armed.trigger, Trigger::Once | Trigger::Nth(_)) {
        // One-shot triggers disarm after firing but stay registered so hit
        // and fired counters remain observable.
        armed.trigger = Trigger::Nth(0); // never fires again (hits are 1-based)
    }
    Err(InjectedFault { failpoint, hit })
}

/// Serializes tests that arm failpoints: the registry is process-global,
/// so concurrent tests would otherwise see each other's faults. Hold the
/// returned guard for the duration of the test.
pub fn serialize_tests() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_checks_are_ok() {
        let _guard = serialize_tests();
        reset();
        assert!(check(SUPPORT_GENERATE).is_ok());
        assert!(check(WEIGHTS_ASSIGN).is_ok());
    }

    #[test]
    fn once_fires_exactly_once() {
        let _guard = serialize_tests();
        reset();
        arm(ENGINE_EXECUTE, Trigger::Once);
        assert!(check(ENGINE_EXECUTE).is_err());
        assert!(check(ENGINE_EXECUTE).is_ok());
        assert!(check(ENGINE_EXECUTE).is_ok());
        assert_eq!(fired_count(ENGINE_EXECUTE), 1);
        assert_eq!(hit_count(ENGINE_EXECUTE), 3);
        reset();
    }

    #[test]
    fn nth_fires_on_exact_hit() {
        let _guard = serialize_tests();
        reset();
        arm(BROKER_BUY, Trigger::Nth(3));
        assert!(check(BROKER_BUY).is_ok());
        assert!(check(BROKER_BUY).is_ok());
        let err = check(BROKER_BUY).unwrap_err();
        assert_eq!(err.hit, 3);
        assert!(check(BROKER_BUY).is_ok());
        reset();
    }

    #[test]
    fn always_fires_until_disarmed() {
        let _guard = serialize_tests();
        reset();
        arm(SUPPORT_GENERATE, Trigger::Always);
        for _ in 0..5 {
            assert!(check(SUPPORT_GENERATE).is_err());
        }
        disarm(SUPPORT_GENERATE);
        assert!(check(SUPPORT_GENERATE).is_ok());
        reset();
    }

    #[test]
    fn seeded_ratio_is_deterministic() {
        let _guard = serialize_tests();
        reset();
        let trigger = Trigger::SeededRatio {
            seed: 42,
            num: 1,
            den: 3,
        };
        let run = |trigger| {
            reset();
            arm(WEIGHTS_ASSIGN, trigger);
            (0..30)
                .map(|_| check(WEIGHTS_ASSIGN).is_err())
                .collect::<Vec<_>>()
        };
        let a = run(trigger);
        let b = run(trigger);
        assert_eq!(a, b, "same seed must replay identically");
        assert!(a.iter().any(|&f| f), "ratio 1/3 over 30 hits should fire");
        assert!(!a.iter().all(|&f| f), "ratio 1/3 should not always fire");
        reset();
    }

    #[test]
    fn ledger_crash_budget_cuts_at_exact_byte() {
        let _guard = serialize_tests();
        reset();
        assert!(!ledger_crash_armed());
        assert_eq!(ledger_write_quota(100), None, "disarmed: unrestricted");

        arm_ledger_crash(25);
        assert!(ledger_crash_armed());
        assert_eq!(ledger_write_quota(10), Some(10), "fits in budget");
        assert_eq!(ledger_write_quota(10), Some(10), "still fits");
        assert_eq!(ledger_write_quota(10), Some(5), "cut mid-record at byte 25");
        assert_eq!(ledger_write_quota(10), Some(0), "budget exhausted");
        disarm_ledger_crash();
        assert_eq!(ledger_write_quota(10), None);
        reset();
    }

    #[test]
    fn reset_disarms_ledger_crash() {
        let _guard = serialize_tests();
        arm_ledger_crash(7);
        reset();
        assert!(!ledger_crash_armed());
    }

    #[test]
    fn arming_is_per_failpoint() {
        let _guard = serialize_tests();
        reset();
        arm(WEIGHTS_ASSIGN, Trigger::Always);
        assert!(check(ENGINE_EXECUTE).is_ok(), "other failpoints unaffected");
        assert!(check(WEIGHTS_ASSIGN).is_err());
        reset();
    }
}
