//! The QIRANA broker: the system facade of Figure 3.
//!
//! [`Qirana`] sits between the buyer and the database. The seller
//! configures a total price, optional price points, the support-set
//! parameters, and a pricing function; buyers then [`Qirana::quote`]
//! prices, [`Qirana::answer`] queries, or [`Qirana::buy`] with
//! history-aware accounting (§3.5): each account tracks which support
//! instances it has already paid for (the bitmap of Algorithm 3 for the
//! coverage family, the accumulated bundle for the entropy family), so
//! repeated information is never charged twice and a buyer who has paid for
//! everything gets all further queries free.

use crate::cache::{CacheStats, PricingCache};
use crate::engine::{
    bundle_disagreements, bundle_partition, bundle_partition_cached, combine_bundle,
    query_disagreements_cached, query_partition, EngineOptions,
};
use crate::fault;
use crate::ledger::{
    self, BuyerSnapshot, Ledger, LedgerConfig, LedgerError, LedgerEvent, SnapshotState,
};
use crate::normal_form::{prepare_query, Prepared};
use crate::pricing::{coverage_price, partition_price, PricingError, PricingFunction};
use crate::support::{
    generate_uniform_worlds, try_generate_support, SupportConfig, SupportError, SupportSet,
};
use crate::telemetry::Stage;
use crate::weights::{assign_weights_with, uniform_weights, PricePoint, WeightError};
use qirana_solver::SolverOptions;
use qirana_sqlengine::update::{apply_update_sql, apply_writes, CellWrite};
use qirana_sqlengine::{execute, Database, EngineError, ExecContext, Fingerprint, QueryOutput};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Which support-set construction the broker uses (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportType {
    /// Random neighborhood of `D` (the recommended choice).
    Neighborhood,
    /// Uniform random instances from `I` (benchmarked in §2.4 / Figure 6;
    /// poorly behaved and memory-hungry — kept for the comparison).
    Uniform,
}

/// How broker construction reacts when support generation or weight
/// assignment fails (the §3.3 reaction loop, made configurable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts at generating a support set and solving for weights.
    /// Each attempt reseeds the support generator; treated as 1 when 0.
    pub max_attempts: u32,
    /// Grow the support set across attempts (backoff): attempts beyond the
    /// second double the size, capped at 8× the configured size.
    pub grow_support: bool,
    /// After every attempt fails on a *retryable* error (infeasible price
    /// points, solver deadline, numerical divergence), degrade gracefully:
    /// drop the price points, assign uniform weights, and mark the broker —
    /// and every quote and purchase it issues — as [degraded]. Prices stay
    /// arbitrage-free; only the seller's price points are no longer
    /// honored. Off, the construction error is returned instead.
    ///
    /// [degraded]: Quote::degraded
    pub fallback_to_uniform: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            grow_support: true,
            fallback_to_uniform: true,
        }
    }
}

/// Broker configuration.
#[derive(Debug, Clone)]
pub struct QiranaConfig {
    /// Price of the whole dataset (`p(Q_all, D) = P`).
    pub total_price: f64,
    /// Support-set parameters.
    pub support: SupportConfig,
    /// Support-set construction.
    pub support_type: SupportType,
    /// Pricing function (weighted coverage is the paper's default).
    pub function: PricingFunction,
    /// Seller price points, enforced via entropy maximization.
    pub price_points: Vec<PricePoint>,
    /// Disagreement-engine options, including the execution budget every
    /// pricing query runs under.
    pub engine: EngineOptions,
    /// Weight-solver options (tolerance, iteration cap, wall-clock
    /// deadline per solve attempt).
    pub solver: SolverOptions,
    /// Construction retry/degradation policy.
    pub retry: RetryPolicy,
}

impl Default for QiranaConfig {
    fn default() -> Self {
        QiranaConfig {
            total_price: 100.0,
            support: SupportConfig::default(),
            support_type: SupportType::Neighborhood,
            function: PricingFunction::WeightedCoverage,
            price_points: Vec::new(),
            engine: EngineOptions::default(),
            solver: SolverOptions::default(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Broker errors.
#[derive(Debug)]
pub enum BrokerError {
    /// SQL failed to parse, plan, or execute (including execution-budget
    /// trips, see [`EngineError::BudgetExceeded`]).
    Engine(EngineError),
    /// Weight assignment failed even after resampling/growing the support.
    Weights(WeightError),
    /// Support-set generation failed even after retries.
    Support(SupportError),
    /// The configured pricing function was dispatched against the wrong
    /// evaluation primitive (a broker misconfiguration).
    Pricing(PricingError),
    /// A buyer's charged bitmap and a freshly priced disagreement bitmap
    /// disagree on length, so the account cannot be charged safely:
    /// silently zip-truncating the two would drop trailing bits and
    /// under-charge every later purchase.
    BitmapLength {
        /// Support-set size the broker prices against.
        expected: usize,
        /// Length of the offending bitmap.
        actual: usize,
    },
    /// The durable ledger failed: an append did not reach disk (the
    /// event was not applied), recovery found corruption, or replay
    /// diverged from the logged prices.
    Ledger(LedgerError),
    /// A fault-injection failpoint fired (tests only; never in production).
    Injected(fault::InjectedFault),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::Engine(e) => write!(f, "{e}"),
            BrokerError::Weights(e) => write!(f, "{e}"),
            BrokerError::Support(e) => write!(f, "{e}"),
            BrokerError::Pricing(e) => write!(f, "{e}"),
            BrokerError::BitmapLength { expected, actual } => write!(
                f,
                "disagreement bitmap length {actual} does not match the \
                 support-set size {expected}; refusing to charge"
            ),
            BrokerError::Ledger(e) => write!(f, "{e}"),
            BrokerError::Injected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<EngineError> for BrokerError {
    fn from(e: EngineError) -> Self {
        BrokerError::Engine(e)
    }
}

impl From<WeightError> for BrokerError {
    fn from(e: WeightError) -> Self {
        BrokerError::Weights(e)
    }
}

impl From<SupportError> for BrokerError {
    fn from(e: SupportError) -> Self {
        BrokerError::Support(e)
    }
}

impl From<PricingError> for BrokerError {
    fn from(e: PricingError) -> Self {
        BrokerError::Pricing(e)
    }
}

impl From<LedgerError> for BrokerError {
    fn from(e: LedgerError) -> Self {
        BrokerError::Ledger(e)
    }
}

/// A price, plus how it was produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quote {
    /// The (arbitrage-free) price.
    pub price: f64,
    /// True when the broker is running on degraded uniform weights because
    /// the seller's price points could not be honored (see
    /// [`RetryPolicy::fallback_to_uniform`]).
    pub degraded: bool,
}

/// Result of a history-aware purchase.
#[derive(Debug, Clone)]
pub struct Purchase {
    /// Amount newly charged for this query.
    pub price: f64,
    /// The buyer's cumulative spend after this purchase.
    pub total_paid: f64,
    /// The query answer.
    pub output: QueryOutput,
    /// True when priced under degraded uniform weights (see
    /// [`Quote::degraded`]).
    pub degraded: bool,
    /// Cumulative pricing-cache counters as of this purchase (all zeros
    /// when the cache is disabled). The per-purchase deltas between
    /// consecutive purchases show how much engine work the memo absorbed.
    pub cache: CacheStats,
}

/// Per-buyer history state.
#[derive(Debug, Clone, Default)]
struct BuyerState {
    /// Coverage family: support instances already paid for (Algorithm 3's
    /// bitmap `b`).
    charged: Vec<bool>,
    /// Entropy family: the accumulated bundle of past purchases. Plans are
    /// `Arc`-shared so re-pricing the bundle never deep-copies them.
    history: Vec<Arc<Prepared>>,
    /// Cumulative spend.
    paid: f64,
}

/// The account mutation a purchase will apply, computed before anything
/// (ledger or memory) is touched so the event can be logged first
/// (append-then-apply).
enum AccountUpdate {
    /// Entropy family: re-anchor the stored total at the freshly priced
    /// bundle (`None` when the purchase was free and the anchor stands).
    Entropy { anchor: Option<f64> },
    /// Coverage family: the merged charged bitmap after this purchase.
    Coverage { charged: Vec<bool> },
}

/// The QIRANA pricing broker.
pub struct Qirana {
    db: Database,
    cfg: QiranaConfig,
    support: SupportSet,
    weights: Vec<f64>,
    buyers: HashMap<String, BuyerState>,
    /// Multiplicative corrections anchoring the entropy-family prices at
    /// `p(Q_all) = P`. The raw formulas normalize by `log S` (resp.
    /// `1 − 1/S`), which assumes all support instances are pairwise
    /// distinguishable by `Q_all`; sampled support sets may contain
    /// duplicate neighbors, so the broker rescales by the entropy the
    /// *actual* `Q_all` partition achieves.
    shannon_factor: f64,
    tsallis_factor: f64,
    /// True when the broker fell back to uniform weights because the
    /// seller's price points could not be honored after every retry.
    degraded: bool,
    /// Shared memo of per-query pricing artifacts (disagreement bitmaps
    /// and partition blocks), keyed by plan fingerprint and invalidated by
    /// the database generation counter on every committed update. Shared
    /// across buyers: the artifacts depend only on the query and the
    /// support set, never on the account.
    ///
    /// Behind a `Mutex` so the `&self` quote path can peek concurrently
    /// (read-only: no recency ticks, no inserts — see
    /// [`PricingCache::peek_bits`]); every `&mut self` commit path goes
    /// through `Mutex::get_mut`, which is lock-free by the aliasing rules.
    cache: Mutex<PricingCache>,
    /// Pool of scratch database replicas backing concurrent `&self`
    /// quotes: the engine primitives take `&mut Database` (the naive and
    /// fallback paths apply each support update in place and roll it
    /// back), so each in-flight quote checks a replica out, prices
    /// against it, and returns it on success. A replica that saw an error
    /// is dropped — a failed evaluation may have died mid-rollback — and
    /// the whole pool is discarded whenever a commit changes the stored
    /// database.
    scratch: Mutex<Vec<Database>>,
    /// Durable write-ahead log of market events. `None` for an in-memory
    /// broker ([`Qirana::new`]); set by [`Qirana::open`] and
    /// [`Qirana::recover`]. Every purchase and commit is appended (and
    /// synced per the fsync policy) *before* it mutates broker state.
    ledger: Option<Ledger>,
}

impl fmt::Debug for Qirana {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Qirana")
            .field("support_size", &self.support.len())
            .field("function", &self.cfg.function)
            .field("degraded", &self.degraded)
            .finish_non_exhaustive()
    }
}

/// Builds one support set from a (possibly reseeded/grown) config.
fn build_support(
    db: &Database,
    support_cfg: &SupportConfig,
    support_type: SupportType,
) -> Result<SupportSet, SupportError> {
    Ok(match support_type {
        SupportType::Neighborhood => {
            SupportSet::Neighborhood(try_generate_support(db, support_cfg)?)
        }
        SupportType::Uniform => SupportSet::Uniform(generate_uniform_worlds(
            db,
            support_cfg.size,
            support_cfg.seed,
        )),
    })
}

impl Qirana {
    /// Builds a broker over a database: generates the support set and
    /// assigns weights. If the seller's price points are infeasible for the
    /// sampled support set — or the solve hits its deadline — the broker
    /// retries per [`QiranaConfig::retry`]: each attempt reseeds the
    /// support generator and (optionally) grows the support set, the
    /// reaction loop of §3.3. When every attempt fails on a retryable
    /// error and [`RetryPolicy::fallback_to_uniform`] is set, the broker
    /// degrades to uniform weights and flags itself — and every quote —
    /// [`Quote::degraded`].
    pub fn new(db: Database, cfg: QiranaConfig) -> Result<Self, BrokerError> {
        let mut db = db;
        let attempts = cfg.retry.max_attempts.max(1);
        let mut last_err: Option<BrokerError> = None;
        for attempt in 0..attempts {
            let mut support_cfg = cfg.support.clone();
            support_cfg.seed = cfg.support.seed.wrapping_add(attempt as u64);
            if cfg.retry.grow_support {
                // Backoff: resample at the configured size first, then
                // double per attempt, capped at 8×.
                support_cfg.size = cfg.support.size << attempt.saturating_sub(1).min(3);
            }
            let support = {
                let span = cfg.engine.telemetry.span(Stage::SupportGen);
                match build_support(&db, &support_cfg, cfg.support_type) {
                    Ok(s) => {
                        span.count("instances", s.len() as u64);
                        s
                    }
                    Err(e) => {
                        last_err = Some(e.into());
                        continue;
                    }
                }
            };
            let _solve = cfg.engine.telemetry.span(Stage::Solve);
            match assign_weights_with(
                &mut db,
                &support,
                cfg.total_price,
                &cfg.price_points,
                &cfg.engine,
                &cfg.solver,
            ) {
                Ok(weights) => return Ok(Self::assemble(db, cfg, support, weights, false)),
                Err(e @ WeightError::BadPricePoint { .. }) => return Err(e.into()),
                Err(e) => last_err = Some(e.into()),
            }
        }

        // Every attempt failed on a retryable error. Degrade if permitted:
        // uniform weights are always feasible and keep every arbitrage-
        // freeness guarantee — only the seller's price points are dropped.
        if cfg.retry.fallback_to_uniform {
            if let Ok(support) = build_support(&db, &cfg.support, cfg.support_type) {
                let weights = uniform_weights(support.len(), cfg.total_price);
                return Ok(Self::assemble(db, cfg, support, weights, true));
            }
        }
        Err(last_err.unwrap_or_else(|| {
            BrokerError::Weights(WeightError::Infeasible {
                reason: "broker construction made no attempts".into(),
            })
        }))
    }

    fn assemble(
        db: Database,
        cfg: QiranaConfig,
        support: SupportSet,
        weights: Vec<f64>,
        degraded: bool,
    ) -> Self {
        let (shannon_factor, tsallis_factor) =
            entropy_factors(&db, &support, &weights, cfg.total_price);
        let cache = PricingCache::new(if cfg.engine.cache.enabled {
            cfg.engine.cache.capacity
        } else {
            0
        });
        Qirana {
            db,
            cfg,
            support,
            weights,
            buyers: HashMap::new(),
            shannon_factor,
            tsallis_factor,
            degraded,
            cache: Mutex::new(cache),
            scratch: Mutex::new(Vec::new()),
            ledger: None,
        }
    }

    /// Locks the pricing cache for a read-side peek. Contention is
    /// bounded: quote-path critical sections are a `BTreeMap` lookup plus
    /// an `Arc` clone, never an engine evaluation. A poisoned mutex is
    /// recovered — the cache is a memo whose worst corruption is a wrong
    /// recency tick, never a wrong price.
    fn cache_guard(&self) -> MutexGuard<'_, PricingCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks a scratch database replica out of the pool (cloning the
    /// stored database when the pool is dry), runs `f` against it, and
    /// returns the replica for reuse on success. See the field docs for
    /// why errors drop the replica instead.
    fn with_scratch_db<T>(
        &self,
        f: impl FnOnce(&mut Database) -> Result<T, BrokerError>,
    ) -> Result<T, BrokerError> {
        /// Bound on pooled replicas: enough for a server's worth of
        /// concurrent quoters without letting a burst pin memory forever.
        const MAX_POOLED: usize = 32;
        let pooled = {
            let mut pool = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
            pool.pop()
        };
        let mut db = pooled.unwrap_or_else(|| self.db.clone());
        let out = f(&mut db)?;
        let mut pool = self.scratch.lock().unwrap_or_else(PoisonError::into_inner);
        if pool.len() < MAX_POOLED {
            pool.push(db);
        }
        Ok(out)
    }

    /// Builds a broker like [`Qirana::new`] and starts a **fresh** durable
    /// ledger in `ledger_cfg.dir` (truncating any previous market there).
    /// Every purchase and committed update is appended to the write-ahead
    /// log before it is applied, so the market can be rebuilt after a
    /// crash with [`Qirana::recover`].
    pub fn open(
        db: Database,
        cfg: QiranaConfig,
        ledger_cfg: LedgerConfig,
    ) -> Result<Self, BrokerError> {
        let mut broker = Self::new(db, cfg)?;
        let mut led = Ledger::create(ledger_cfg)?;
        led.set_telemetry(broker.cfg.engine.telemetry.clone());
        broker.ledger = Some(led);
        Ok(broker)
    }

    /// Rebuilds a crashed market from its ledger directory.
    ///
    /// `db` must be the same **genesis** database the market was
    /// [`Qirana::open`]ed with and `cfg` the same configuration: support
    /// generation and weight assignment are deterministic in `(db, cfg)`,
    /// so the rebuilt broker prices exactly like the original. Recovery
    /// then loads the last snapshot (restoring table rows, buyer
    /// accounts, and the cache generation), replays every logged event
    /// after it, and **re-prices each logged purchase**, verifying the
    /// recomputed price is bitwise-identical to the logged one — the
    /// determinism of the pricing pipeline doubles as a recovery
    /// invariant. A torn tail (crash mid-append) is truncated; corruption
    /// a crash cannot explain surfaces as
    /// [`BrokerError::Ledger`]`(`[`LedgerError::Corrupt`]`)`, and a price
    /// mismatch as [`LedgerError::ReplayDiverged`].
    pub fn recover(
        db: Database,
        cfg: QiranaConfig,
        ledger_cfg: LedgerConfig,
    ) -> Result<Self, BrokerError> {
        let mut broker = Self::new(db, cfg)?;
        let tel = broker.cfg.engine.telemetry.clone();
        let recovery = tel.span(Stage::Recovery);
        let (mut led, recovered) = ledger::recover_dir(&ledger_cfg)?;
        led.set_telemetry(tel.clone());
        if let Some(snap) = &recovered.snapshot {
            recovery.count("snapshot_buyers", snap.buyers.len() as u64);
            broker.restore_snapshot(snap)?;
        }
        {
            let replay = tel.span(Stage::Replay);
            replay.count("events", recovered.events.len() as u64);
            for (seq, ev) in &recovered.events {
                broker.replay_event(*seq, ev)?;
            }
        }
        tel.counter_add(
            "recovery_events_replayed_total",
            recovered.events.len() as u64,
        );
        broker.ledger = Some(led);
        Ok(broker)
    }

    /// Restores broker state from a snapshot: table rows, buyer accounts
    /// (histories re-prepared from their SQL), the cache generation, and
    /// the entropy anchors recomputed against the restored database.
    fn restore_snapshot(&mut self, snap: &SnapshotState) -> Result<(), BrokerError> {
        let mismatch = |detail: String| BrokerError::Ledger(LedgerError::StateMismatch { detail });
        if snap.tables.len() != self.db.tables().len() {
            return Err(mismatch(format!(
                "snapshot has {} tables, database has {}",
                snap.tables.len(),
                self.db.tables().len()
            )));
        }
        for (ti, rows) in snap.tables.iter().enumerate() {
            if rows.len() != self.db.table_at(ti).rows.len() {
                return Err(mismatch(format!(
                    "table {ti}: snapshot has {} rows, database has {} \
                     (updates are cell-level, so row counts never change)",
                    rows.len(),
                    self.db.table_at(ti).rows.len()
                )));
            }
            for (ri, row) in rows.iter().enumerate() {
                if row.len() != self.db.table_at(ti).rows[ri].len() {
                    return Err(mismatch(format!(
                        "table {ti} row {ri}: snapshot has {} cells, database has {}",
                        row.len(),
                        self.db.table_at(ti).rows[ri].len()
                    )));
                }
                for (ci, v) in row.iter().enumerate() {
                    // `set_cell` keeps the lazy key index coherent; only
                    // differing cells are written.
                    if self.db.table_at(ti).rows[ri][ci] != *v {
                        self.db.table_at_mut(ti).set_cell(ri, ci, v.clone());
                    }
                }
            }
        }
        self.buyers.clear();
        for b in &snap.buyers {
            let mut history = Vec::with_capacity(b.history.len());
            for sql in &b.history {
                let prepared = prepare_query(&self.db, sql).map_err(|e| {
                    mismatch(format!(
                        "buyer {}: logged history query no longer prepares: {e}",
                        b.name
                    ))
                })?;
                history.push(Arc::new(prepared));
            }
            self.buyers.insert(
                b.name.clone(),
                BuyerState {
                    charged: b.charged.clone(),
                    history,
                    paid: b.paid,
                },
            );
        }
        // Post-snapshot cache keys must never collide with pre-crash ones,
        // and the entropy anchors are a function of the restored rows.
        self.cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .restore_generation(snap.generation);
        // Restored rows may differ from the ones the replicas were cloned
        // from.
        self.scratch
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        let (shannon, tsallis) =
            entropy_factors(&self.db, &self.support, &self.weights, self.cfg.total_price);
        self.shannon_factor = shannon;
        self.tsallis_factor = tsallis;
        Ok(())
    }

    /// Replays one logged event against live state, without re-logging.
    /// Purchases are re-priced and verified bitwise against the log.
    fn replay_event(&mut self, seq: u64, ev: &LedgerEvent) -> Result<(), BrokerError> {
        let diverged =
            |detail: String| BrokerError::Ledger(LedgerError::ReplayDiverged { seq, detail });
        match ev {
            LedgerEvent::PurchaseCommitted {
                buyer,
                sql,
                price,
                total_paid,
            } => {
                let purchase = self
                    .buy_inner(buyer, sql, false)
                    .map_err(|e| diverged(format!("re-pricing failed: {e}")))?;
                if purchase.price.to_bits() != price.to_bits() {
                    return Err(diverged(format!(
                        "logged price {price} != replayed price {} for buyer {buyer}",
                        purchase.price
                    )));
                }
                if purchase.total_paid.to_bits() != total_paid.to_bits() {
                    return Err(diverged(format!(
                        "logged balance {total_paid} != replayed balance {} for buyer {buyer}",
                        purchase.total_paid
                    )));
                }
                Ok(())
            }
            LedgerEvent::UpdateCommitted { sql, changed } => {
                let undo = apply_update_sql(&mut self.db, sql)
                    .map_err(|e| diverged(format!("logged update failed to re-apply: {e}")))?;
                if undo.len() as u64 != *changed {
                    return Err(diverged(format!(
                        "logged update changed {changed} cells, replay changed {}",
                        undo.len()
                    )));
                }
                if !undo.is_empty() {
                    self.after_commit();
                }
                Ok(())
            }
            LedgerEvent::WritesCommitted { writes } => {
                if !writes.is_empty() {
                    apply_writes(&mut self.db, writes);
                    self.after_commit();
                }
                Ok(())
            }
            LedgerEvent::SnapshotTaken { .. } => Ok(()),
        }
    }

    /// The durable ledger, when this broker has one.
    pub fn ledger(&self) -> Option<&Ledger> {
        self.ledger.as_ref()
    }

    /// True when the broker runs on degraded uniform weights (price points
    /// dropped after exhausting [`QiranaConfig::retry`]).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The support-set size actually in use.
    pub fn support_size(&self) -> usize {
        self.support.len()
    }

    /// The instance weights (after any price-point solve).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Executes a query without pricing it (under the configured execution
    /// budget).
    pub fn answer(&self, sql: &str) -> Result<QueryOutput, BrokerError> {
        let plan = qirana_sqlengine::prepare(&self.db, sql)?;
        let ctx = ExecContext::new(&self.db).with_budget(self.cfg.engine.budget);
        Ok(execute(&plan, &ctx)?)
    }

    /// History-oblivious price of a single query.
    ///
    /// Quoting is a *read*: it takes `&self`, never mutates the pricing
    /// cache (not even recency ticks — see [`PricingCache::peek_bits`]),
    /// and therefore any number of quote sessions may run concurrently
    /// with each other. An abandoned quote leaves the broker bit-identical
    /// to one that never happened.
    pub fn quote(&self, sql: &str) -> Result<f64, BrokerError> {
        Ok(self.quote_ex(sql)?.price)
    }

    /// [`Qirana::quote`], with the degradation flag attached.
    pub fn quote_ex(&self, sql: &str) -> Result<Quote, BrokerError> {
        self.quote_bundle_ex(&[sql])
    }

    /// History-oblivious price of a query bundle `Q = (Q₁, …, Qₙ)`.
    /// `&self`, like [`Qirana::quote`].
    pub fn quote_bundle(&self, sqls: &[&str]) -> Result<f64, BrokerError> {
        Ok(self.quote_bundle_ex(sqls)?.price)
    }

    /// [`Qirana::quote_bundle`], with the degradation flag attached.
    pub fn quote_bundle_ex(&self, sqls: &[&str]) -> Result<Quote, BrokerError> {
        let prepared: Vec<Prepared> = {
            let span = self.cfg.engine.telemetry.span(Stage::Prepare);
            span.count("queries", sqls.len() as u64);
            sqls.iter()
                .map(|s| prepare_query(&self.db, s))
                .collect::<Result<_, _>>()?
        };
        let bundle: Vec<&Prepared> = prepared.iter().collect();
        let price = self.price_bundle_readonly(&bundle)?;
        self.publish_gauges();
        Ok(Quote {
            price,
            degraded: self.degraded,
        })
    }

    fn entropy_factor(&self) -> f64 {
        match self.cfg.function {
            PricingFunction::ShannonEntropy => self.shannon_factor,
            PricingFunction::QEntropy => self.tsallis_factor,
            _ => 1.0,
        }
    }

    /// The read-only pricing kernel behind the quote family. Works through
    /// `&self`: cache consultation is peek-only (no recency ticks, no
    /// insertions, no counter bumps — see [`PricingCache::peek_bits`]) and
    /// engine evaluation runs against a pooled scratch replica of the
    /// stored database, so concurrent quoters never contend on engine
    /// state.
    ///
    /// Bitwise identical to the commit-side cached pricing:
    ///
    /// * coverage — the OR of per-query *full* bitmaps equals the
    ///   active-set short-circuit path (a skipped instance's bit is
    ///   already `true` in the OR; see `bundle_disagreements_cached`);
    /// * entropy — per-query fingerprint vectors folded instance-by-
    ///   instance with [`combine_bundle`] equal the monolithic bundle
    ///   partition (see `bundle_partition_cached`).
    fn price_bundle_readonly(&self, bundle: &[&Prepared]) -> Result<f64, BrokerError> {
        let total = self.cfg.total_price;
        let use_cache = self.cfg.engine.cache.enabled;
        if self.cfg.function.needs_partition() {
            let partition = if use_cache {
                self.bundle_partition_peeked(bundle)?
            } else {
                self.with_scratch_db(|db| {
                    Ok(bundle_partition(
                        db,
                        bundle,
                        &self.support,
                        &self.cfg.engine,
                    )?)
                })?
            };
            Ok(
                partition_price(self.cfg.function, total, &self.weights, &partition)?
                    * self.entropy_factor(),
            )
        } else {
            let bits = if use_cache {
                self.bundle_disagreements_peeked(bundle)?
            } else {
                self.with_scratch_db(|db| {
                    Ok(bundle_disagreements(
                        db,
                        bundle,
                        &self.support,
                        &self.cfg.engine,
                        None,
                    )?)
                })?
            };
            Ok(coverage_price(
                self.cfg.function,
                total,
                &self.weights,
                &bits,
            )?)
        }
    }

    /// Peek-only counterpart of `bundle_disagreements_cached`: ORs each
    /// member's full bitmap, serving hits from the memo without touching
    /// recency and computing misses on a scratch replica without inserting
    /// them (only buys populate the cache). The top-of-path failpoint
    /// mirrors the cached engine entry point.
    fn bundle_disagreements_peeked(&self, bundle: &[&Prepared]) -> Result<Vec<bool>, BrokerError> {
        fault::check(fault::ENGINE_EXECUTE)
            .map_err(|f| EngineError::Eval(format!("injected fault: {f}")))?;
        let n = self.support.len();
        let mut disagree = vec![false; n];
        for q in bundle {
            let bits = self.query_disagreements_peeked(q)?;
            for (d, &b) in disagree.iter_mut().zip(bits.iter()) {
                *d |= b;
            }
        }
        Ok(disagree)
    }

    /// One query's full disagreement bitmap: peek the memo, else evaluate
    /// on a scratch replica. Never writes the cache.
    fn query_disagreements_peeked(&self, q: &Prepared) -> Result<Arc<Vec<bool>>, BrokerError> {
        let tel = &self.cfg.engine.telemetry;
        {
            let lookup = tel.span_with(Stage::CacheLookup, String::new());
            if let Some(bits) = self.cache_guard().peek_bits(q.plan_fp) {
                lookup.count("hit", 1);
                return Ok(bits);
            }
            lookup.count("miss", 1);
        }
        let bits = self.with_scratch_db(|db| {
            Ok(bundle_disagreements(
                db,
                &[q],
                &self.support,
                &self.cfg.engine,
                None,
            )?)
        })?;
        Ok(Arc::new(bits))
    }

    /// Peek-only counterpart of `bundle_partition_cached`: per-query
    /// fingerprint vectors (memo peek or scratch-replica evaluation)
    /// folded instance-by-instance with [`combine_bundle`].
    fn bundle_partition_peeked(
        &self,
        bundle: &[&Prepared],
    ) -> Result<Vec<Fingerprint>, BrokerError> {
        fault::check(fault::ENGINE_EXECUTE)
            .map_err(|f| EngineError::Eval(format!("injected fault: {f}")))?;
        let mut per_query = Vec::with_capacity(bundle.len());
        for q in bundle {
            per_query.push(self.query_fingerprints_peeked(q)?);
        }
        let n = self.support.len();
        let mut row = vec![Fingerprint(0); bundle.len()];
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            for (slot, fps) in row.iter_mut().zip(&per_query) {
                *slot = fps[i];
            }
            out.push(combine_bundle(&row));
        }
        Ok(out)
    }

    /// One query's per-instance output fingerprints: peek the memo, else
    /// evaluate on a scratch replica. Never writes the cache.
    fn query_fingerprints_peeked(
        &self,
        q: &Prepared,
    ) -> Result<Arc<Vec<Fingerprint>>, BrokerError> {
        let tel = &self.cfg.engine.telemetry;
        {
            let lookup = tel.span_with(Stage::CacheLookup, String::new());
            if let Some(fps) = self.cache_guard().peek_blocks(q.plan_fp) {
                lookup.count("hit", 1);
                return Ok(fps);
            }
            lookup.count("miss", 1);
        }
        let fps = self
            .with_scratch_db(|db| Ok(query_partition(db, q, &self.support, &self.cfg.engine)?))?;
        Ok(Arc::new(fps))
    }

    /// History-aware purchase: prices the query against the buyer's
    /// account, charges only for new information, and returns the answer.
    ///
    /// With the pricing cache enabled (the default), only the one new query
    /// is evaluated against the support set — O(S) — while every history
    /// entry's disagreement bitmap or partition blocks come from the shared
    /// memo; with it disabled the whole accumulated bundle is re-evaluated
    /// (O(H·S)). The two paths produce bitwise-identical prices.
    pub fn buy(&mut self, buyer: &str, sql: &str) -> Result<Purchase, BrokerError> {
        self.buy_inner(buyer, sql, true)
    }

    /// The purchase pipeline. Phase 1 computes the answer, the price, and
    /// the account mutation without touching any account state; phase 2
    /// appends the event to the ledger (when `log` and one is attached);
    /// phase 3 applies the mutation. A crash between phases 2 and 3 is
    /// healed by replay — the logged price is authoritative. `log = false`
    /// is the recovery replay path itself.
    fn buy_inner(&mut self, buyer: &str, sql: &str, log: bool) -> Result<Purchase, BrokerError> {
        fault::check(fault::BROKER_BUY).map_err(BrokerError::Injected)?;
        let prepared = {
            let _span = self.cfg.engine.telemetry.span(Stage::Prepare);
            Arc::new(prepare_query(&self.db, sql)?)
        };
        let s = self.support.len();
        let use_cache = self.cfg.engine.cache.enabled;

        // Phase 1: answer and price, mutating no account state. A failed
        // purchase (budget trip, injected fault, ledger append failure)
        // must not charge the buyer or corrupt their history. Pricing
        // leaves the database unchanged, so answering before pricing is
        // equivalent. The pricing cache may retain artifacts computed
        // before a later failure — that is safe: they are buyer-independent
        // facts about query × support set, not account state.
        let output = {
            let ctx = ExecContext::new(&self.db).with_budget(self.cfg.engine.budget);
            execute(&prepared.plan, &ctx)?
        };
        let old_paid = self.buyers.get(buyer).map(|b| b.paid).unwrap_or(0.0);
        let (price, total_after, update) = if self.cfg.function.needs_partition() {
            // Entropy family: price the accumulated bundle and charge the
            // increment (bundle formulation of §2.2's history-aware mode).
            let mut history: Vec<Arc<Prepared>> = self
                .buyers
                .get(buyer)
                .map(|st| st.history.clone())
                .unwrap_or_default();
            history.push(Arc::clone(&prepared));
            let bundle: Vec<&Prepared> = history.iter().map(Arc::as_ref).collect();
            let factor = self.entropy_factor();
            let partition = if use_cache {
                bundle_partition_cached(
                    &mut self.db,
                    &bundle,
                    &self.support,
                    &self.cfg.engine,
                    // `get_mut` is lock-free: `&mut self` proves no quote
                    // session holds the peek lock concurrently.
                    self.cache.get_mut().unwrap_or_else(PoisonError::into_inner),
                )?
            } else {
                bundle_partition(&mut self.db, &bundle, &self.support, &self.cfg.engine)?
            };
            let total_now = partition_price(
                self.cfg.function,
                self.cfg.total_price,
                &self.weights,
                &partition,
            )? * factor;
            let mut delta = total_now - old_paid;
            let anchor = if delta <= 0.0 {
                delta = 0.0; // also normalizes -0.0 from float cancellation
                None
            } else {
                // Anchor the stored total at the freshly priced bundle
                // instead of accumulating `paid += delta`: the two are
                // equal in exact arithmetic, but the accumulation drifts
                // by one rounding error per purchase over a long session.
                Some(total_now)
            };
            (
                delta,
                anchor.unwrap_or(old_paid),
                AccountUpdate::Entropy { anchor },
            )
        } else {
            // Coverage family: Algorithm 3's bitmap.
            let charged = match self.buyers.get(buyer) {
                Some(st) if !st.charged.is_empty() => {
                    if st.charged.len() != s {
                        return Err(BrokerError::BitmapLength {
                            expected: s,
                            actual: st.charged.len(),
                        });
                    }
                    st.charged.clone()
                }
                _ => vec![false; s],
            };
            let bits: Vec<bool> = if use_cache {
                // The memo holds the query's *full* bitmap (shared across
                // buyers); masking it with the charged bits afterwards is
                // bitwise identical to skip-evaluating, since per-instance
                // verdicts are independent.
                let full = query_disagreements_cached(
                    &mut self.db,
                    &prepared,
                    &self.support,
                    &self.cfg.engine,
                    self.cache.get_mut().unwrap_or_else(PoisonError::into_inner),
                )?;
                if full.len() != s {
                    return Err(BrokerError::BitmapLength {
                        expected: s,
                        actual: full.len(),
                    });
                }
                full.iter().zip(&charged).map(|(&b, &c)| b && !c).collect()
            } else {
                bundle_disagreements(
                    &mut self.db,
                    &[&prepared],
                    &self.support,
                    &self.cfg.engine,
                    Some(&charged),
                )?
            };
            if bits.len() != s {
                return Err(BrokerError::BitmapLength {
                    expected: s,
                    actual: bits.len(),
                });
            }
            let mut delta = coverage_price(
                self.cfg.function,
                self.cfg.total_price,
                &self.weights,
                &bits,
            )?;
            if delta <= 0.0 {
                delta = 0.0; // normalize -0.0
            }
            let mut merged = charged;
            if merged.len() != bits.len() {
                // Never zip-truncate: dropping trailing bits would silently
                // under-charge every later purchase.
                return Err(BrokerError::BitmapLength {
                    expected: merged.len(),
                    actual: bits.len(),
                });
            }
            for (c, b) in merged.iter_mut().zip(&bits) {
                *c |= b;
            }
            (
                delta,
                old_paid + delta,
                AccountUpdate::Coverage { charged: merged },
            )
        };

        // Phase 2: append-then-apply. The event must be durable before the
        // account mutates, so a crash can never leave a charged buyer the
        // log knows nothing about. On append failure nothing was applied.
        let commit = self.cfg.engine.telemetry.span(Stage::BrokerCommit);
        if log {
            if let Some(led) = self.ledger.as_mut() {
                led.append(&LedgerEvent::PurchaseCommitted {
                    buyer: buyer.to_string(),
                    sql: sql.to_string(),
                    price,
                    total_paid: total_after,
                })?;
            }
        }

        // Phase 3: apply the planned mutation.
        let state = self.buyers.entry(buyer.to_string()).or_default();
        match update {
            AccountUpdate::Entropy { anchor } => {
                if let Some(total) = anchor {
                    state.paid = total;
                }
                state.history.push(prepared);
            }
            AccountUpdate::Coverage { charged } => {
                state.charged = charged;
                state.paid = total_after;
            }
        }

        let purchase = Purchase {
            price,
            total_paid: total_after,
            output,
            degraded: self.degraded,
            cache: self
                .cache
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner)
                .stats(),
        };
        if log {
            self.maybe_snapshot()?;
        }
        drop(commit);
        self.cfg.engine.telemetry.counter_add("purchases_total", 1);
        self.publish_gauges();
        Ok(purchase)
    }

    /// A buyer's cumulative spend, or `None` for a buyer the broker has
    /// never seen — distinguishable from a real zero balance.
    pub fn buyer_paid(&self, buyer: &str) -> Option<f64> {
        self.buyers.get(buyer).map(|b| b.paid)
    }

    /// Fraction of the support set a buyer has already paid for (coverage
    /// family; 1.0 means all further queries are free), or `None` for a
    /// buyer the broker has never seen.
    pub fn buyer_coverage(&self, buyer: &str) -> Option<f64> {
        self.buyers.get(buyer).map(|b| {
            if b.charged.is_empty() {
                0.0
            } else {
                // qirana-lint::allow(QL002): support-set counts, far below 2^53
                b.charged.iter().filter(|&&c| c).count() as f64 / b.charged.len() as f64
            }
        })
    }

    /// The SQL texts of a buyer's purchased queries, oldest first (entropy
    /// family; the coverage family charges through the bitmap and keeps no
    /// per-query history), or `None` for a buyer the broker has never
    /// seen.
    pub fn buyer_history(&self, buyer: &str) -> Option<Vec<String>> {
        self.buyers
            .get(buyer)
            .map(|b| b.history.iter().map(|p| p.sql.clone()).collect())
    }

    /// Every buyer with an account, sorted by name.
    pub fn buyer_names(&self) -> Vec<String> {
        // qirana-lint::allow(QL001): keys are collected and sorted before use
        let mut names: Vec<String> = self.buyers.keys().cloned().collect();
        names.sort();
        names
    }

    /// Commits a SQL `UPDATE` statement to the stored database and returns
    /// the number of cells changed.
    ///
    /// Committing bumps the database generation, which invalidates every
    /// memoized pricing artifact at once (a cached bitmap describes the old
    /// `Q(D)`, so serving it would misprice), and re-anchors the
    /// entropy-family normalization factors against the updated database.
    /// Support set, weights, and buyer accounts are kept: the support
    /// updates are cell-level edits that remain valid neighbors of the new
    /// database, and history-aware accounting still never re-charges an
    /// instance a buyer has paid for.
    pub fn commit_update(&mut self, sql: &str) -> Result<usize, BrokerError> {
        let span = self
            .cfg
            .engine
            .telemetry
            .span_with(Stage::BrokerCommit, "update".into());
        // qirana-lint::allow(QL009): the changed-cell count is only known after applying; an append failure rolls the database back via the undo batch
        let undo = apply_update_sql(&mut self.db, sql)?;
        span.count("cells_changed", undo.len() as u64);
        let changed = undo.len();
        if changed == 0 {
            return Ok(0);
        }
        // The changed-cell count is only known after applying, so this
        // path applies first and logs second; if the append fails, the
        // undo batch rolls the database back so memory and disk agree.
        if let Some(led) = self.ledger.as_mut() {
            if let Err(e) = led.append(&LedgerEvent::UpdateCommitted {
                sql: sql.to_string(),
                changed: changed as u64,
            }) {
                apply_writes(&mut self.db, &undo);
                return Err(e.into());
            }
        }
        self.after_commit();
        self.maybe_snapshot()?;
        self.publish_gauges();
        Ok(changed)
    }

    /// Commits a batch of cell writes to the stored database (the
    /// programmatic counterpart of [`Qirana::commit_update`], same
    /// invalidation semantics). Fails without applying anything when the
    /// ledger append fails (append-then-apply).
    pub fn commit_writes(&mut self, writes: &[CellWrite]) -> Result<(), BrokerError> {
        if writes.is_empty() {
            return Ok(());
        }
        let span = self
            .cfg
            .engine
            .telemetry
            .span_with(Stage::BrokerCommit, "writes".into());
        span.count("cells_changed", writes.len() as u64);
        if let Some(led) = self.ledger.as_mut() {
            led.append(&LedgerEvent::WritesCommitted {
                writes: writes.to_vec(),
            })?;
        }
        apply_writes(&mut self.db, writes);
        self.after_commit();
        self.maybe_snapshot()?;
        self.publish_gauges();
        Ok(())
    }

    fn after_commit(&mut self) {
        self.cache
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .bump_generation();
        // Scratch replicas mirror the *old* rows; quoting against one
        // after a commit would price the stale database.
        self.scratch
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        let (shannon, tsallis) =
            entropy_factors(&self.db, &self.support, &self.weights, self.cfg.total_price);
        self.shannon_factor = shannon;
        self.tsallis_factor = tsallis;
    }

    /// Takes a snapshot and compacts the log when the configured cadence
    /// is due. Called after every applied event; a no-op without a ledger
    /// or before the cadence.
    fn maybe_snapshot(&mut self) -> Result<(), BrokerError> {
        if !self.ledger.as_ref().is_some_and(Ledger::should_snapshot) {
            return Ok(());
        }
        let snap = self.snapshot_state();
        if let Some(led) = self.ledger.as_mut() {
            led.snapshot_and_compact(&snap)?;
        }
        Ok(())
    }

    /// Serializes the broker's durable state: table rows, buyer accounts
    /// (balances bit-exact, histories as SQL), and the cache generation.
    /// Entropy anchors are recomputed on restore, not stored.
    fn snapshot_state(&self) -> SnapshotState {
        // qirana-lint::allow(QL001): keys are collected and sorted before use
        let mut names: Vec<&String> = self.buyers.keys().collect();
        names.sort();
        let buyers = names
            .into_iter()
            .filter_map(|name| {
                self.buyers.get(name).map(|st| BuyerSnapshot {
                    name: name.clone(),
                    paid: st.paid,
                    charged: st.charged.clone(),
                    history: st.history.iter().map(|p| p.sql.clone()).collect(),
                })
            })
            .collect();
        SnapshotState {
            seq: self.ledger.as_ref().map_or(0, Ledger::last_seq),
            generation: self.cache_guard().generation(),
            tables: self.db.tables().iter().map(|t| t.rows.clone()).collect(),
            buyers,
        }
    }

    /// Publishes cumulative cache counters and fault-injection trip counts
    /// into the telemetry registry as gauges (they are monotone snapshots
    /// of broker-owned state, not deltas, so gauges — set, never added —
    /// keep re-publication idempotent). No-op when telemetry is disabled.
    fn publish_gauges(&self) {
        let tel = &self.cfg.engine.telemetry;
        if !tel.is_enabled() {
            return;
        }
        let (s, entries) = {
            let cache = self.cache_guard();
            (cache.stats(), cache.len())
        };
        tel.gauge_set("cache_hits", s.hits);
        tel.gauge_set("cache_misses", s.misses);
        tel.gauge_set("cache_evictions", s.evictions);
        tel.gauge_set("cache_invalidations", s.invalidations);
        tel.gauge_set("cache_entries", entries as u64);
        for fp in [
            fault::SUPPORT_GENERATE,
            fault::WEIGHTS_ASSIGN,
            fault::ENGINE_EXECUTE,
            fault::BROKER_BUY,
            fault::LEDGER_APPEND,
            fault::LEDGER_SNAPSHOT,
        ] {
            let fired = fault::fired_count(fp);
            if fired > 0 {
                tel.gauge_set(&format!("fault_fired_{}", fp.replace("::", "_")), fired);
            }
        }
    }

    /// Cumulative pricing-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_guard().stats()
    }

    /// Number of memoized pricing artifacts currently held.
    pub fn cache_len(&self) -> usize {
        self.cache_guard().len()
    }

    /// The database generation the cache keys against (bumped by every
    /// committed update).
    pub fn cache_generation(&self) -> u64 {
        self.cache_guard().generation()
    }

    /// A deterministic image of the cache's eviction order — every entry's
    /// key, kind, and recency tick — for regression tests that assert a
    /// read left eviction state bit-identical.
    pub fn cache_recency_snapshot(&self) -> Vec<(u128, u8, u64)> {
        self.cache_guard().recency_snapshot()
    }
}

/// Computes the entropy-anchoring factors: the raw entropy prices of the
/// finest partition `Q_all` actually induces on the (possibly duplicated)
/// support set, inverted so the broker can rescale to exactly `P`.
fn entropy_factors(
    db: &Database,
    support: &SupportSet,
    weights: &[f64],
    total_price: f64,
) -> (f64, f64) {
    use qirana_sqlengine::Fingerprint;
    let partition: Vec<Fingerprint> = match support {
        SupportSet::Neighborhood(updates) => updates
            .iter()
            .map(|u| Fingerprint(u.signature(db) as u128))
            .collect(),
        SupportSet::Uniform(worlds) => worlds.iter().map(world_fingerprint).collect(),
    };
    let raw_shannon = crate::pricing::shannon_entropy(total_price, weights, &partition);
    let raw_tsallis = crate::pricing::q_entropy(total_price, weights, &partition);
    let factor = |raw: f64| if raw > 0.0 { total_price / raw } else { 1.0 };
    (factor(raw_shannon), factor(raw_tsallis))
}

/// Content fingerprint of a whole database (bag of rows per table).
fn world_fingerprint(db: &Database) -> qirana_sqlengine::Fingerprint {
    let fps: Vec<qirana_sqlengine::Fingerprint> = db
        .tables()
        .iter()
        .map(|t| {
            crate::engine::bag_fp(QueryOutput {
                columns: t.schema.columns.iter().map(|c| c.name.clone()).collect(),
                rows: t.rows.clone(),
                ordered: false,
            })
        })
        .collect();
    crate::engine::combine_bundle(&fps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn twitter_db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("name", DataType::Str),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![
                vec![1.into(), "John".into(), "m".into(), 25.into()],
                vec![2.into(), "Alice".into(), "f".into(), 13.into()],
                vec![3.into(), "Bob".into(), "m".into(), 45.into()],
                vec![4.into(), "Anna".into(), "f".into(), 19.into()],
            ],
        );
        db.add_table(
            TableSchema::new(
                "Tweet",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("location", DataType::Str),
                ],
                &["tid"],
            ),
            vec![
                vec![1.into(), 3.into(), "CA".into()],
                vec![2.into(), 3.into(), "WA".into()],
                vec![3.into(), 1.into(), "OR".into()],
                vec![4.into(), 2.into(), "CA".into()],
            ],
        );
        db
    }

    fn broker() -> Qirana {
        Qirana::new(
            twitter_db(),
            QiranaConfig {
                support: SupportConfig {
                    size: 500,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn full_dataset_costs_total_price() {
        let q = broker();
        let p = q
            .quote_bundle(&["SELECT * FROM User", "SELECT * FROM Tweet"])
            .unwrap();
        assert!((p - 100.0).abs() < 1e-9, "Q_all must price at P, got {p}");
    }

    #[test]
    fn running_example_no_arbitrage() {
        // §1's motivating example: Q2 (group counts) determines Q1 (count of
        // females), so p(Q1) ≤ p(Q2) must hold.
        let q = broker();
        let p1 = q
            .quote("SELECT count(*) FROM User WHERE gender = 'f'")
            .unwrap();
        let p2 = q
            .quote("SELECT gender, count(*) FROM User GROUP BY gender")
            .unwrap();
        assert!(
            p1 <= p2 + 1e-9,
            "information arbitrage: p(Q1)={p1} > p(Q2)={p2}"
        );
        // And AVG(age) is determined by (SUM(age), COUNT via Q2): bundle
        // subadditivity must make p(Q3) ≤ p(Q2) + p(Q4).
        let p3 = q.quote("SELECT AVG(age) FROM User").unwrap();
        let p4 = q.quote("SELECT SUM(age) FROM User").unwrap();
        assert!(p3 <= p2 + p4 + 1e-9, "p3={p3} p2={p2} p4={p4}");
    }

    #[test]
    fn history_aware_repeat_is_free() {
        let mut q = broker();
        let sql = "SELECT gender, count(*) FROM User GROUP BY gender";
        let first = q.buy("alice", sql).unwrap();
        assert!(first.price > 0.0);
        let second = q.buy("alice", sql).unwrap();
        assert_eq!(second.price, 0.0, "repeat purchase must be free");
        assert_eq!(second.total_paid, first.total_paid);
    }

    #[test]
    fn history_aware_overlap_discounted() {
        // Q5 (male count) is determined by Q2 (group counts): after buying
        // Q2, Q5 must be free — the §1 example's last step.
        let mut q = broker();
        q.buy("alice", "SELECT gender, count(*) FROM User GROUP BY gender")
            .unwrap();
        let q5 = q
            .buy("alice", "SELECT count(*) FROM User WHERE gender = 'm'")
            .unwrap();
        assert_eq!(q5.price, 0.0, "determined query after purchase is free");
    }

    #[test]
    fn history_aware_total_le_oblivious_sum() {
        let q = broker();
        let queries = [
            "SELECT count(*) FROM User WHERE gender = 'f'",
            "SELECT gender, count(*) FROM User GROUP BY gender",
            "SELECT AVG(age) FROM User",
            "SELECT SUM(age) FROM User",
        ];
        let mut oblivious = 0.0;
        for sql in queries {
            oblivious += q.quote(sql).unwrap();
        }
        let mut q2 = broker();
        let mut aware = 0.0;
        for sql in queries {
            aware += q2.buy("bob", sql).unwrap().price;
        }
        assert!(
            aware <= oblivious + 1e-9,
            "history-aware {aware} must not exceed oblivious {oblivious}"
        );
        assert!(aware > 0.0);
    }

    #[test]
    fn buying_everything_makes_rest_free() {
        let mut q = broker();
        q.buy("carol", "SELECT * FROM User").unwrap();
        q.buy("carol", "SELECT * FROM Tweet").unwrap();
        assert!((q.buyer_paid("carol").unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(q.buyer_coverage("carol"), Some(1.0));
        assert_eq!(q.buyer_paid("nobody"), None, "unknown buyer is None");
        assert_eq!(q.buyer_coverage("nobody"), None);
        assert_eq!(q.buyer_names(), vec!["carol".to_string()]);
        let p = q.buy("carol", "SELECT count(*) FROM User").unwrap();
        assert_eq!(p.price, 0.0);
    }

    #[test]
    fn per_buyer_isolation() {
        let mut q = broker();
        q.buy("alice", "SELECT * FROM User").unwrap();
        let bob = q
            .buy("bob", "SELECT count(*) FROM User WHERE gender = 'f'")
            .unwrap();
        assert!(bob.price > 0.0, "bob has no history; he pays");
    }

    #[test]
    fn cardinality_is_public_knowledge() {
        // COUNT(*) with no predicate is constant over I (relation sizes are
        // fixed), so it discloses nothing and must be free.
        let q = broker();
        let p = q.quote("SELECT count(*) FROM User").unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn price_points_flow_through() {
        let mut cfg = QiranaConfig {
            support: SupportConfig {
                size: 400,
                ..Default::default()
            },
            ..Default::default()
        };
        cfg.price_points = vec![PricePoint::new("SELECT * FROM User", 70.0)];
        let q = Qirana::new(twitter_db(), cfg).unwrap();
        let p = q.quote("SELECT * FROM User").unwrap();
        assert!((p - 70.0).abs() < 1e-4, "price point must bind: {p}");
        let all = q
            .quote_bundle(&["SELECT * FROM User", "SELECT * FROM Tweet"])
            .unwrap();
        assert!((all - 100.0).abs() < 1e-4);
    }

    #[test]
    fn entropy_function_brokers_work() {
        for f in [PricingFunction::ShannonEntropy, PricingFunction::QEntropy] {
            let mut q = Qirana::new(
                twitter_db(),
                QiranaConfig {
                    function: f,
                    support: SupportConfig {
                        size: 200,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            let p_small = q
                .quote("SELECT count(*) FROM User WHERE gender='f'")
                .unwrap();
            let p_all = q
                .quote_bundle(&["SELECT * FROM User", "SELECT * FROM Tweet"])
                .unwrap();
            assert!(p_small >= 0.0 && p_small <= p_all + 1e-9);
            assert!((p_all - 100.0).abs() < 1e-6, "{f:?}: Q_all = {p_all}");
            // History-aware repeats stay free.
            let sql = "SELECT gender, count(*) FROM User GROUP BY gender";
            let a = q.buy("zed", sql).unwrap();
            let b = q.buy("zed", sql).unwrap();
            assert!(a.price >= 0.0);
            assert!(b.price.abs() < 1e-9);
        }
    }

    #[test]
    fn repeat_buys_hit_the_cache() {
        let mut q = broker();
        let sql = "SELECT gender, count(*) FROM User GROUP BY gender";
        let first = q.buy("alice", sql).unwrap();
        assert_eq!(first.cache.hits, 0);
        assert!(first.cache.misses >= 1, "cold buy must miss");
        let second = q.buy("alice", sql).unwrap();
        assert!(second.cache.hits > first.cache.hits, "repeat must hit");
        assert_eq!(
            second.cache.misses, first.cache.misses,
            "repeat does no new engine work"
        );
    }

    #[test]
    fn cache_is_shared_across_buyers() {
        let mut q = broker();
        let sql = "SELECT gender FROM User WHERE age > 18";
        q.buy("alice", sql).unwrap();
        let before = q.cache_stats();
        let bob = q.buy("bob", sql).unwrap();
        assert_eq!(
            bob.cache.misses, before.misses,
            "bob reuses alice's artifact"
        );
        assert_eq!(bob.cache.hits, before.hits + 1);
        assert!(
            bob.price > 0.0,
            "shared artifact, separate account: bob still pays"
        );
    }

    #[test]
    fn cached_and_uncached_sessions_price_identically() {
        for function in [
            PricingFunction::WeightedCoverage,
            PricingFunction::UniformEntropyGain,
            PricingFunction::ShannonEntropy,
            PricingFunction::QEntropy,
        ] {
            let cfg = |enabled: bool| QiranaConfig {
                function,
                support: SupportConfig {
                    size: 300,
                    ..Default::default()
                },
                engine: if enabled {
                    EngineOptions::default()
                } else {
                    EngineOptions::default().with_cache(crate::cache::CacheConfig::disabled())
                },
                ..Default::default()
            };
            let mut on = Qirana::new(twitter_db(), cfg(true)).unwrap();
            let mut off = Qirana::new(twitter_db(), cfg(false)).unwrap();
            let session = [
                "SELECT count(*) FROM User WHERE gender = 'f'",
                "SELECT gender, count(*) FROM User GROUP BY gender",
                "SELECT count(*) FROM User WHERE gender = 'f'",
                "SELECT AVG(age) FROM User",
                "SELECT * FROM Tweet",
            ];
            for sql in session {
                let a = on.buy("dana", sql).unwrap();
                let b = off.buy("dana", sql).unwrap();
                assert_eq!(
                    a.price.to_bits(),
                    b.price.to_bits(),
                    "{function:?}: {sql} priced differently with cache on"
                );
                assert_eq!(a.total_paid.to_bits(), b.total_paid.to_bits());
            }
            assert!(on.cache_stats().hits > 0, "{function:?}: session must hit");
            assert_eq!(off.cache_stats(), crate::cache::CacheStats::default());
        }
    }

    /// Regression for the mutable-quote bug: quoting used to demand
    /// `&mut Qirana` because cache hits bumped LRU recency, so a rejected
    /// or abandoned quote perturbed eviction order for every other buyer.
    /// Quotes are now peek-only: served, missed, and rejected quotes must
    /// all leave the cache's eviction state bit-identical.
    #[test]
    fn abandoned_quote_leaves_eviction_state_bit_identical() {
        for function in [
            PricingFunction::WeightedCoverage,
            PricingFunction::ShannonEntropy,
        ] {
            let mut q = Qirana::new(
                twitter_db(),
                QiranaConfig {
                    function,
                    support: SupportConfig {
                        size: 200,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .unwrap();
            // Purchases are the only memo write path.
            q.buy("alice", "SELECT * FROM User WHERE age > 20").unwrap();
            q.buy("alice", "SELECT location FROM Tweet").unwrap();
            let recency0 = q.cache_recency_snapshot();
            let stats0 = q.cache_stats();
            assert!(!recency0.is_empty(), "{function:?}: buys populate the memo");

            // A quote served from the memo, a quote that misses it, and a
            // rejected quote (the abandoned session).
            q.quote("SELECT * FROM User WHERE age > 20").unwrap();
            q.quote("SELECT name FROM User WHERE gender = 'f'").unwrap();
            assert!(q.quote("SELECT nope FROM Missing").is_err());

            assert_eq!(
                q.cache_recency_snapshot(),
                recency0,
                "{function:?}: quotes must not move recency ticks"
            );
            assert_eq!(
                q.cache_stats(),
                stats0,
                "{function:?}: quotes must be counter-quiet"
            );
        }
    }

    /// The concurrent-session design rests on `&self` quotes being safe to
    /// share across threads.
    #[test]
    fn broker_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Qirana>();
    }

    #[test]
    fn committed_update_invalidates_cache_and_reprices() {
        let mut q = broker();
        let sql = "SELECT age FROM User WHERE uid = 1";
        let p0 = q.quote(sql).unwrap();
        assert!(p0 > 0.0);
        // Quotes are peek-only reads; buys populate the shared memo.
        assert_eq!(q.cache_len(), 0, "a quote must not populate the memo");
        q.buy("erin", sql).unwrap();
        assert!(q.cache_len() > 0, "buy populates the memo");
        let gen0 = q.cache_generation();

        // A write matching nothing commits nothing and invalidates nothing.
        let noop = q
            .commit_update("UPDATE User SET age = 99 WHERE uid = 999")
            .unwrap();
        assert_eq!(noop, 0);
        assert_eq!(q.cache_generation(), gen0);

        let changed = q
            .commit_update("UPDATE User SET age = 26 WHERE uid = 1")
            .unwrap();
        assert_eq!(changed, 1);
        assert_eq!(q.cache_generation(), gen0 + 1);
        assert_eq!(q.cache_len(), 0, "commit purges every artifact");
        assert!(q.cache_stats().invalidations >= 1);
        // The answer reflects the committed write…
        let out = q.answer(sql).unwrap();
        assert_eq!(out.rows[0][0], 26i64.into());
        // …and the next purchase is recomputed against the new database,
        // not served from a stale artifact.
        let misses0 = q.cache_stats().misses;
        q.buy("erin", sql).unwrap();
        assert!(
            q.cache_stats().misses > misses0,
            "post-commit purchase must re-evaluate"
        );
    }

    #[test]
    fn uniform_support_overprices_selective_queries() {
        let q = Qirana::new(
            twitter_db(),
            QiranaConfig {
                support_type: SupportType::Uniform,
                support: SupportConfig {
                    size: 60,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        // §2.4's observation: a uniformly random database is almost surely
        // far from D, so even a query touching one cell prices at a large
        // fraction of P — far above its neighborhood price.
        let narrow = "SELECT age FROM User WHERE uid = 1";
        let p_uniform = q.quote(narrow).unwrap();
        let q_nbrs = broker();
        let p_nbrs = q_nbrs.quote(narrow).unwrap();
        assert!(
            p_uniform > 2.0 * p_nbrs,
            "uniform ({p_uniform}) should far exceed nbrs ({p_nbrs})"
        );
    }

    #[test]
    fn answers_are_correct() {
        let q = broker();
        let out = q
            .answer("SELECT count(*) FROM User WHERE gender = 'f'")
            .unwrap();
        assert_eq!(out.rows[0][0], 2i64.into());
    }
}
