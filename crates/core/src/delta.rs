//! Incremental (delta) support evaluation.
//!
//! Every neighborhood support instance is the base database plus exactly
//! one row/swap update, yet the baseline evaluators re-execute the full
//! plan once per neighbor. This module executes the plan **once** on the
//! base instance, materializes per-operator intermediate state, and then
//! prices each neighbor as a *delta* against the memoized base:
//!
//! * **Fingerprint arithmetic.** An unordered result fingerprint is
//!   `header(N, C) + Σ row_hash(r)` under wrapping `u128` addition
//!   (see [`qirana_sqlengine::fingerprint`]), so a neighbor's fingerprint
//!   is the base fingerprint minus the removed rows' hashes plus the
//!   added rows' hashes, with the header adjusted for the new row count.
//!   Prices compare fingerprints, never row orders, so `ORDER BY` is
//!   transparent to the delta.
//! * **SPJ contributions.** SPJ(-shape) queries have no self-joins, `
//!   DISTINCT`, or `LIMIT`, so the output bag is the disjoint union of
//!   each tuple's contribution: executing the plan with the updated
//!   relation overridden to *just* the changed tuples yields exactly the
//!   rows those tuples produce (the `naive::reduced_disagreements`
//!   override trick, turned per-neighbor). For two-relation equi-joins a
//!   prebuilt join-match index over the partner relation answers the same
//!   question without re-scanning the partner (validated at build time
//!   against the override path, falling back to it on any mismatch).
//! * **Aggregate accumulators.** Aggregate-shape queries memoize one
//!   group state per output row: the executor's representative row, exact
//!   (order-independent) accumulators with the executor's float shadows,
//!   and the output-row hash. A neighbor removes the changed tuples' core
//!   rows and adds their replacements, recomputing only affected groups.
//!   Guards detect every order-dependent case (float sums, `AVG` beyond
//!   the 2⁵³ exact-integer range, `MIN`/`MAX` ties with mixed value
//!   representations, representative-dependent projections) and fall
//!   back to full execution for that neighbor.
//! * **Short circuits.** An update to an unreferenced relation, an update
//!   whose *effective* changed columns are empty, or one that misses the
//!   query's column footprint (referenced ∪ join columns) agrees with the
//!   base by construction — no execution at all.
//!
//! Fallback policy: any guard trip, eval error, or modeling doubt routes
//! that one neighbor through full plan execution on a lazily cloned
//! database, so the delta path can never invent or suppress a result the
//! full-execution path wouldn't produce. A build-time self-check
//! reconstructs the base fingerprint from the materialized state and
//! declines ([`DeltaState::Ineligible`]) on any mismatch.

use crate::engine::bag_fp;
use crate::normal_form::{Prepared, Shape};
use crate::telemetry::Telemetry;
use crate::update::SupportUpdate;
use qirana_sqlengine::ast::BinaryOp;
use qirana_sqlengine::exec::eval_row_expr;
use qirana_sqlengine::plan::{AggSpec, Projection};
use qirana_sqlengine::update::apply_writes;
use qirana_sqlengine::{
    execute, output_row_hash, Database, EngineError, ExecContext, Fingerprint, PExpr, PRelation,
    ResolvedSelect, Row, Value,
};
use std::collections::{BTreeMap, HashSet};

/// The unordered-fingerprint header term (`N ^ (C << 64)`).
fn header(rows: u64, cols: u64) -> u128 {
    rows as u128 ^ ((cols as u128) << 64)
}

/// Bitwise value identity (stricter than `sql_eq`/`total_cmp`): two values
/// are interchangeable as *expression inputs* only if they are the same
/// variant with the same bits — `Int(3)` and `Float(3.0)` compare equal
/// but `3 / 2` evaluates differently on each.
fn strict_value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Date(x), Value::Date(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// State
// ---------------------------------------------------------------------------

/// Materialized per-plan delta state, cacheable under the plan fingerprint
/// and database generation.
// Built once per plan and always held behind an `Arc`, so the by-value
// size gap between `Ineligible` and the populated variants never moves.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum DeltaState {
    /// SPJ shape: per-relation contribution probes.
    Spj(SpjDelta),
    /// Aggregate shape: per-group accumulators over the unrolled core.
    Agg(AggDelta),
    /// The build declined (unsupported shape detail or a failed base
    /// self-check). Cached so the decision isn't re-derived per call.
    Ineligible,
}

impl DeltaState {
    /// True iff the state can answer probes.
    pub fn is_usable(&self) -> bool {
        !matches!(self, DeltaState::Ineligible)
    }

    fn base_fp(&self) -> Option<Fingerprint> {
        match self {
            DeltaState::Spj(d) => Some(d.base_fp),
            DeltaState::Agg(d) => Some(d.base_fp),
            DeltaState::Ineligible => None,
        }
    }
}

/// Delta state for an SPJ-shape plan.
#[derive(Debug)]
pub struct SpjDelta {
    base_fp: Fingerprint,
    base_rows: u64,
    cols: u64,
    /// Probe info per referenced catalog table (SPJ shapes have no
    /// self-joins, so each table maps to exactly one relation).
    rels: BTreeMap<usize, SpjRelProbe>,
}

#[derive(Debug)]
struct SpjRelProbe {
    /// Local columns the query can observe (referenced ∪ join columns).
    footprint: HashSet<usize>,
    strategy: Strategy,
}

#[derive(Debug)]
enum Strategy {
    /// Execute the plan with the relation overridden to the probed rows.
    Override,
    /// Prebuilt partner join-match index (two-relation equi-join).
    Indexed(IndexedJoin),
}

/// Join-match index for one side of a two-relation equi-join: partner rows
/// that survive the partner's local conjuncts, bucketed by the composite
/// equi-edge key — mirroring the executor's hash-join build side (NULL
/// keys never join and are skipped).
#[derive(Debug)]
struct IndexedJoin {
    self_offset: usize,
    self_arity: usize,
    partner_offset: usize,
    width: usize,
    /// Conjuncts local to the probed relation, rebased to local slots.
    self_local: Vec<PExpr>,
    /// Self-side equi-edge key expressions (local slots), conjunct order.
    self_keys: Vec<PExpr>,
    /// Partner rows passing partner-local conjuncts, by composite key.
    buckets: BTreeMap<Vec<Value>, Vec<Row>>,
    /// Non-edge, non-local conjuncts (global slots), conjunct order.
    residuals: Vec<PExpr>,
    /// Output expressions (global slots).
    projections: Vec<PExpr>,
    /// Sort-key expressions, evaluated and discarded (error parity with
    /// full execution; the bag fingerprint ignores order).
    order_by: Vec<PExpr>,
}

/// Delta state for an aggregate-shape plan.
#[derive(Debug)]
pub struct AggDelta {
    base_fp: Fingerprint,
    base_out_rows: u64,
    cols: u64,
    width: usize,
    /// Global aggregate (empty GROUP BY): always exactly one output row.
    global: bool,
    /// Column footprint per referenced catalog table.
    rels: BTreeMap<usize, HashSet<usize>>,
    /// The unrolled core: same FROM/WHERE, identity projections, no
    /// grouping — overriding the updated relation yields exactly the core
    /// rows the changed tuples contribute.
    core: ResolvedSelect,
    group_by: Vec<PExpr>,
    specs: Vec<AggSpec>,
    /// Raw output expressions (may mix `AggRef`s and row slots).
    out_exprs: Vec<PExpr>,
    order_exprs: Vec<PExpr>,
    /// Row slots the output expressions read — the representative row
    /// only matters through these.
    watched: Vec<usize>,
    groups: BTreeMap<Vec<Value>, GroupState>,
}

#[derive(Debug, Clone)]
struct GroupState {
    /// The executor's representative (first core row of the group in base
    /// scan order — the build folds rows in the same order).
    first_row: Row,
    /// `first_row` restricted to the watched slots.
    watched_vals: Vec<Value>,
    /// True iff every base member agrees bitwise on the watched slots —
    /// then the representative choice cannot be observed.
    watched_clean: bool,
    /// The synthesized empty global group (`GROUP BY ()` over no rows).
    synthetic: bool,
    count: u64,
    accums: Vec<DAcc>,
    /// Hash of this group's base output row.
    out_hash: u128,
}

// ---------------------------------------------------------------------------
// Exact accumulators
// ---------------------------------------------------------------------------

/// A subtractable accumulator that tracks both the executor's exact base
/// value (float shadows fed in base scan order) and order-independent
/// exact forms for neighbor recomputation. `finalize_base` is bitwise the
/// executor's base result; `finalize_probe` yields a value only when the
/// neighbor result is provably order-independent.
#[derive(Debug, Clone)]
enum DAcc {
    Count {
        n: i64,
    },
    Sum {
        n_nonnull: u64,
        int: i64,
        shadow: f64,
        nonint: u64,
    },
    Avg {
        n: i64,
        int: i128,
        abs: u128,
        shadow: f64,
        nonint: u64,
    },
    MinMax {
        is_min: bool,
        /// Multiset of values by `total_cmp` class; the stored key is the
        /// first-inserted member (the executor's strict-better rule keeps
        /// exactly that member as the class representative).
        classes: BTreeMap<Value, u64>,
        /// A class received members with differing bit representations —
        /// the surviving representative then depends on feed order.
        dirty: bool,
    },
}

/// Largest integer magnitude whose running f64 sums stay exact.
const EXACT_F64_SUM: u128 = 1u128 << 53;

impl DAcc {
    fn new(spec: &AggSpec) -> Option<DAcc> {
        use qirana_sqlengine::ast::AggFunc;
        match (spec.func, spec.distinct) {
            (AggFunc::Min, _) => Some(DAcc::MinMax {
                is_min: true,
                classes: BTreeMap::new(),
                dirty: false,
            }),
            (AggFunc::Max, _) => Some(DAcc::MinMax {
                is_min: false,
                classes: BTreeMap::new(),
                dirty: false,
            }),
            // DISTINCT aggregates fold a set with float addition — order-
            // and multiplicity-sensitive in ways the delta cannot undo
            // (the shape classifier routes them to Opaque anyway).
            (_, true) => None,
            (AggFunc::Count, false) => Some(DAcc::Count { n: 0 }),
            (AggFunc::Sum, false) => Some(DAcc::Sum {
                n_nonnull: 0,
                int: 0,
                shadow: 0.0,
                nonint: 0,
            }),
            (AggFunc::Avg, false) => Some(DAcc::Avg {
                n: 0,
                int: 0,
                abs: 0,
                shadow: 0.0,
                nonint: 0,
            }),
        }
    }

    /// Feeds one `COUNT(*)` row.
    fn add_star(&mut self) {
        if let DAcc::Count { n } = self {
            *n += 1;
        }
    }

    fn sub_star(&mut self) {
        if let DAcc::Count { n } = self {
            *n -= 1;
        }
    }

    /// Feeds one argument value (NULLs skipped, per SQL semantics).
    fn add(&mut self, v: Value) {
        if matches!(v, Value::Null) {
            return;
        }
        match self {
            DAcc::Count { n } => *n += 1,
            DAcc::Sum {
                n_nonnull,
                int,
                shadow,
                nonint,
            } => {
                *n_nonnull += 1;
                match v {
                    Value::Int(x) => {
                        *int = int.wrapping_add(x);
                        // qirana-lint::allow(QL002): executor shadow-sum
                        *shadow += x as f64; // replica, bit-exact by design
                    }
                    other => {
                        *nonint += 1;
                        *shadow += other.as_f64().unwrap_or(0.0);
                    }
                }
            }
            DAcc::Avg {
                n,
                int,
                abs,
                shadow,
                nonint,
            } => {
                *n += 1;
                *shadow += v.as_f64().unwrap_or(0.0);
                match v {
                    Value::Int(x) => {
                        *int += x as i128;
                        *abs += (x as i128).unsigned_abs();
                    }
                    _ => *nonint += 1,
                }
            }
            DAcc::MinMax { classes, dirty, .. } => {
                if let Some((rep, _)) = classes.get_key_value(&v) {
                    if !strict_value_eq(rep, &v) {
                        *dirty = true;
                    }
                    if let Some(c) = classes.get_mut(&v) {
                        *c += 1;
                    }
                } else {
                    classes.insert(v, 1);
                }
            }
        }
    }

    /// Removes one previously fed argument value.
    fn sub(&mut self, v: &Value) {
        if matches!(v, Value::Null) {
            return;
        }
        match self {
            DAcc::Count { n } => *n -= 1,
            DAcc::Sum {
                n_nonnull,
                int,
                nonint,
                ..
            } => {
                *n_nonnull = n_nonnull.saturating_sub(1);
                match v {
                    Value::Int(x) => *int = int.wrapping_sub(*x),
                    _ => *nonint = nonint.saturating_sub(1),
                }
            }
            DAcc::Avg {
                n,
                int,
                abs,
                nonint,
                ..
            } => {
                *n -= 1;
                match v {
                    Value::Int(x) => {
                        *int -= *x as i128;
                        *abs = abs.saturating_sub((*x as i128).unsigned_abs());
                    }
                    _ => *nonint = nonint.saturating_sub(1),
                }
            }
            DAcc::MinMax { classes, dirty, .. } => match classes.get_key_value(v) {
                Some((rep, _)) => {
                    if !strict_value_eq(rep, v) {
                        *dirty = true;
                    }
                    if let Some(c) = classes.get_mut(v) {
                        *c -= 1;
                        if *c == 0 {
                            classes.remove(v);
                        }
                    }
                }
                None => *dirty = true,
            },
        }
    }

    /// The executor's base value, bitwise (float shadows were fed in the
    /// executor's own scan order).
    fn finalize_base(&self) -> Value {
        match self {
            DAcc::Count { n } => Value::Int(*n),
            DAcc::Sum {
                n_nonnull,
                int,
                shadow,
                nonint,
            } => {
                if *n_nonnull == 0 {
                    Value::Null
                } else if *nonint > 0 {
                    Value::Float(*shadow)
                } else {
                    Value::Int(*int)
                }
            }
            DAcc::Avg { n, shadow, .. } => {
                if *n == 0 {
                    Value::Null
                } else {
                    // qirana-lint::allow(QL002): executor replica — the
                    Value::Float(*shadow / *n as f64) // same cast it does
                }
            }
            DAcc::MinMax {
                is_min, classes, ..
            } => {
                let rep = if *is_min {
                    classes.first_key_value()
                } else {
                    classes.last_key_value()
                };
                rep.map(|(v, _)| v.clone()).unwrap_or(Value::Null)
            }
        }
    }

    /// The neighbor value, or `None` when the result would depend on the
    /// (unknowable) neighbor feed order → the caller falls back to full
    /// execution.
    fn finalize_probe(&self) -> Option<Value> {
        match self {
            DAcc::Count { n } => Some(Value::Int(*n)),
            DAcc::Sum {
                n_nonnull,
                int,
                nonint,
                ..
            } => {
                if *n_nonnull == 0 {
                    Some(Value::Null)
                } else if *nonint > 0 {
                    None // float accumulation is feed-order dependent
                } else {
                    Some(Value::Int(*int)) // wrapping add commutes
                }
            }
            DAcc::Avg {
                n,
                int,
                abs,
                nonint,
                ..
            } => {
                if *n == 0 {
                    Some(Value::Null)
                } else if *nonint > 0 || *abs > EXACT_F64_SUM {
                    None
                } else {
                    // All-integer with Σ|v| ≤ 2^53: every partial sum is an
                    // exactly representable integer, so the executor's f64
                    // accumulation equals `int` in any feed order.
                    // qirana-lint::allow(QL002): exactness proven above
                    Some(Value::Float(*int as f64 / *n as f64))
                }
            }
            DAcc::MinMax {
                is_min,
                classes,
                dirty,
            } => {
                if classes.is_empty() {
                    Some(Value::Null)
                } else if *dirty {
                    None // representative depends on feed order
                } else {
                    let rep = if *is_min {
                        classes.first_key_value()
                    } else {
                        classes.last_key_value()
                    };
                    rep.map(|(v, _)| v.clone())
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Build
// ---------------------------------------------------------------------------

/// Builds delta state for a prepared query, executing the plan once on the
/// base instance. Returns [`DeltaState::Ineligible`] (not an error) when
/// the shape is opaque, a shape detail is unsupported, or the base
/// self-check fails; errors only when the base execution itself errors —
/// exactly when every full-execution path errors too.
pub fn build(db: &Database, q: &Prepared) -> Result<DeltaState, EngineError> {
    match &q.shape {
        Shape::Spj(shape) => build_spj(db, q, &shape.relations),
        Shape::Agg(shape) => build_agg(db, q, &shape.relations),
        Shape::Opaque { .. } => Ok(DeltaState::Ineligible),
    }
}

fn footprint_of(rel: &crate::normal_form::RelShape) -> HashSet<usize> {
    let mut fp = rel.referenced_cols.clone();
    fp.extend(rel.join_cols.iter().copied());
    fp
}

fn build_spj(
    db: &Database,
    q: &Prepared,
    relations: &[crate::normal_form::RelShape],
) -> Result<DeltaState, EngineError> {
    let out = execute(&q.plan, &ExecContext::new(db))?;
    let base_rows = out.rows.len() as u64;
    let cols = out.columns.len() as u64;
    let base_fp = bag_fp(out);

    let mut rels = BTreeMap::new();
    for rel in relations {
        let strategy = match build_indexed(db, &q.plan, rel.rel_idx) {
            Some(ix) => {
                // Validate the index against the override path on one real
                // row before trusting it; any divergence (or error skew)
                // demotes this side to the override strategy.
                let sample = db.table_at(rel.table).rows.first().cloned();
                let valid = match sample {
                    None => true,
                    Some(r0) => {
                        let probe = [r0];
                        match (
                            indexed_contrib(db, &ix, &probe),
                            override_contrib(db, &q.plan, rel.table, &probe),
                        ) {
                            (Ok(a), Ok(b)) => a == b,
                            _ => false,
                        }
                    }
                };
                if valid {
                    Strategy::Indexed(ix)
                } else {
                    Strategy::Override
                }
            }
            None => Strategy::Override,
        };
        rels.insert(
            rel.table,
            SpjRelProbe {
                footprint: footprint_of(rel),
                strategy,
            },
        );
    }
    Ok(DeltaState::Spj(SpjDelta {
        base_fp,
        base_rows,
        cols,
        rels,
    }))
}

/// Relation bitmask of an expression — mirrors the executor's `rels_of`.
fn rels_of(e: &PExpr, plan: &ResolvedSelect) -> u64 {
    let mut slots = Vec::new();
    e.collect_slots(&mut slots);
    let mut mask = 0u64;
    for s in slots {
        if let Some(rel) = plan.offsets.iter().rposition(|&o| o <= s) {
            mask |= 1 << rel;
        }
    }
    mask
}

/// Builds the join-match index for relation `s` of a two-base-relation
/// equi-join plan, mirroring the executor's conjunct classification
/// (prefilter / equi-edge / residual) so probe results match hash-join
/// execution exactly. `None` when the plan doesn't fit the pattern.
fn build_indexed(db: &Database, plan: &ResolvedSelect, s: usize) -> Option<IndexedJoin> {
    if plan.relations.len() != 2 || s > 1 {
        return None;
    }
    let p = 1 - s;
    let (PRelation::Base { .. }, PRelation::Base { table: p_table, .. }) =
        (&plan.relations[s], &plan.relations[p])
    else {
        return None;
    };

    let mut self_local = Vec::new();
    let mut partner_local = Vec::new();
    let mut self_keys = Vec::new();
    let mut partner_keys = Vec::new();
    let mut residuals = Vec::new();
    let conjs = plan
        .filter
        .clone()
        .map(PExpr::conjuncts)
        .unwrap_or_default();
    for c in conjs {
        if c.has_subquery() {
            residuals.push(c);
            continue;
        }
        let rels = rels_of(&c, plan);
        if rels.count_ones() == 1 {
            let r = rels.trailing_zeros() as usize;
            let off = plan.offsets[r];
            let mut local = c;
            local.map_slots(&mut |sl| sl - off);
            if r == s {
                self_local.push(local);
            } else {
                partner_local.push(local);
            }
            continue;
        }
        if let PExpr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = &c
        {
            let lr = rels_of(left, plan);
            let rr = rels_of(right, plan);
            if lr.count_ones() == 1 && rr.count_ones() == 1 && lr != rr {
                let (mut se, mut pe) = if lr.trailing_zeros() as usize == s {
                    ((**left).clone(), (**right).clone())
                } else {
                    ((**right).clone(), (**left).clone())
                };
                se.map_slots(&mut |sl| sl - plan.offsets[s]);
                pe.map_slots(&mut |sl| sl - plan.offsets[p]);
                self_keys.push(se);
                partner_keys.push(pe);
                continue;
            }
        }
        residuals.push(c);
    }
    if self_keys.is_empty() {
        return None; // cartesian: the override strategy handles it
    }

    // Index the partner rows that survive the partner's local conjuncts,
    // skipping NULL keys (they never join in the executor either).
    let ctx = ExecContext::new(db);
    let mut buckets: BTreeMap<Vec<Value>, Vec<Row>> = BTreeMap::new();
    'rows: for row in &db.table_at(*p_table).rows {
        for e in &partner_local {
            if eval_row_expr(e, row, &ctx).ok()?.as_bool3() != Some(true) {
                continue 'rows;
            }
        }
        let mut key = Vec::with_capacity(partner_keys.len());
        for e in &partner_keys {
            let v = eval_row_expr(e, row, &ctx).ok()?;
            if matches!(v, Value::Null) {
                continue 'rows;
            }
            key.push(v);
        }
        buckets.entry(key).or_default().push(row.clone());
    }

    Some(IndexedJoin {
        self_offset: plan.offsets[s],
        self_arity: plan.relations[s].arity(),
        partner_offset: plan.offsets[p],
        width: plan.width,
        self_local,
        self_keys,
        buckets,
        residuals,
        projections: plan.projections.iter().map(|pr| pr.expr.clone()).collect(),
        order_by: plan.order_by.iter().map(|(e, _)| e.clone()).collect(),
    })
}

/// The unrolled core of an aggregate plan: same FROM/WHERE, identity
/// projections, no grouping — its output is the joined core rows.
fn core_identity(plan: &ResolvedSelect) -> ResolvedSelect {
    let mut core = plan.clone();
    core.grouped = false;
    core.group_by.clear();
    core.aggregates.clear();
    core.having = None;
    core.order_by.clear();
    core.limit = None;
    core.distinct = false;
    core.projections = (0..plan.width)
        .map(|sl| Projection {
            expr: PExpr::Slot(sl),
            name: format!("c{sl}"),
        })
        .collect();
    core
}

/// Replaces `AggRef`s with finalized literals so output expressions can be
/// evaluated in plain row context.
fn subst_aggs(e: &PExpr, aggs: &[Value]) -> PExpr {
    let sub = |b: &PExpr| Box::new(subst_aggs(b, aggs));
    match e {
        PExpr::AggRef(j) => PExpr::Literal(aggs.get(*j).cloned().unwrap_or(Value::Null)),
        PExpr::Literal(_)
        | PExpr::Interval { .. }
        | PExpr::Slot(_)
        | PExpr::OuterSlot { .. }
        | PExpr::InSubquery { .. }
        | PExpr::Exists { .. }
        | PExpr::ScalarSubquery(_) => e.clone(),
        PExpr::Unary { op, expr } => PExpr::Unary {
            op: *op,
            expr: sub(expr),
        },
        PExpr::Binary { left, op, right } => PExpr::Binary {
            left: sub(left),
            op: *op,
            right: sub(right),
        },
        PExpr::Like {
            expr,
            pattern,
            negated,
        } => PExpr::Like {
            expr: sub(expr),
            pattern: pattern.clone(),
            negated: *negated,
        },
        PExpr::Between {
            expr,
            low,
            high,
            negated,
        } => PExpr::Between {
            expr: sub(expr),
            low: sub(low),
            high: sub(high),
            negated: *negated,
        },
        PExpr::InList {
            expr,
            list,
            negated,
        } => PExpr::InList {
            expr: sub(expr),
            list: list.iter().map(|x| subst_aggs(x, aggs)).collect(),
            negated: *negated,
        },
        PExpr::IsNull { expr, negated } => PExpr::IsNull {
            expr: sub(expr),
            negated: *negated,
        },
        PExpr::Case {
            operand,
            branches,
            else_expr,
        } => PExpr::Case {
            operand: operand.as_ref().map(|o| sub(o)),
            branches: branches
                .iter()
                .map(|(w, t)| (subst_aggs(w, aggs), subst_aggs(t, aggs)))
                .collect(),
            else_expr: else_expr.as_ref().map(|o| sub(o)),
        },
    }
}

fn watched_vals(row: &[Value], watched: &[usize]) -> Vec<Value> {
    watched.iter().map(|&s| row[s].clone()).collect()
}

fn watched_agree(vals: &[Value], row: &[Value], watched: &[usize]) -> bool {
    watched
        .iter()
        .zip(vals)
        .all(|(&s, v)| strict_value_eq(v, &row[s]))
}

fn build_agg(
    db: &Database,
    q: &Prepared,
    relations: &[crate::normal_form::RelShape],
) -> Result<DeltaState, EngineError> {
    let out = execute(&q.plan, &ExecContext::new(db))?;
    let base_out_rows = out.rows.len() as u64;
    let cols = out.columns.len() as u64;
    let base_fp = bag_fp(out);

    let specs = q.plan.aggregates.clone();
    if specs.iter().any(|s| DAcc::new(s).is_none()) {
        return Ok(DeltaState::Ineligible);
    }
    let core = core_identity(&q.plan);
    let Ok(core_out) = execute(&core, &ExecContext::new(db)) else {
        return Ok(DeltaState::Ineligible);
    };

    let out_exprs: Vec<PExpr> = q.plan.projections.iter().map(|p| p.expr.clone()).collect();
    let order_exprs: Vec<PExpr> = q.plan.order_by.iter().map(|(e, _)| e.clone()).collect();
    let mut watched = Vec::new();
    for e in out_exprs.iter().chain(order_exprs.iter()) {
        e.collect_slots(&mut watched);
    }
    watched.sort_unstable();
    watched.dedup();

    // Fold the core rows in the executor's own scan order: representatives
    // and float shadows come out bitwise identical to `run_grouped`.
    let ctx = ExecContext::new(db);
    let group_by = q.plan.group_by.clone();
    let mut groups: BTreeMap<Vec<Value>, GroupState> = BTreeMap::new();
    for row in &core_out.rows {
        let mut key = Vec::with_capacity(group_by.len());
        for g in &group_by {
            match eval_row_expr(g, row, &ctx) {
                Ok(v) => key.push(v),
                Err(_) => return Ok(DeltaState::Ineligible),
            }
        }
        if !groups.contains_key(&key) {
            let accums = match specs.iter().map(DAcc::new).collect::<Option<Vec<_>>>() {
                Some(a) => a,
                None => return Ok(DeltaState::Ineligible),
            };
            groups.insert(
                key.clone(),
                GroupState {
                    first_row: row.clone(),
                    watched_vals: watched_vals(row, &watched),
                    watched_clean: true,
                    synthetic: false,
                    count: 0,
                    accums,
                    out_hash: 0,
                },
            );
        }
        let Some(st) = groups.get_mut(&key) else {
            return Ok(DeltaState::Ineligible);
        };
        if st.watched_clean && !watched_agree(&st.watched_vals, row, &watched) {
            st.watched_clean = false;
        }
        st.count += 1;
        for (acc, spec) in st.accums.iter_mut().zip(&specs) {
            match &spec.arg {
                None => acc.add_star(),
                Some(a) => match eval_row_expr(a, row, &ctx) {
                    Ok(v) => acc.add(v),
                    Err(_) => return Ok(DeltaState::Ineligible),
                },
            }
        }
    }
    let global = group_by.is_empty();
    if groups.is_empty() && global {
        let accums = match specs.iter().map(DAcc::new).collect::<Option<Vec<_>>>() {
            Some(a) => a,
            None => return Ok(DeltaState::Ineligible),
        };
        let null_row = vec![Value::Null; q.plan.width];
        groups.insert(
            Vec::new(),
            GroupState {
                watched_vals: watched_vals(&null_row, &watched),
                first_row: null_row,
                watched_clean: true,
                synthetic: true,
                count: 0,
                accums,
                out_hash: 0,
            },
        );
    }

    // Output-row hashes + base self-check: the reconstructed fingerprint
    // must equal the executed one, or the state models the plan wrongly.
    let mut sum = 0u128;
    for st in groups.values_mut() {
        let aggs: Vec<Value> = st.accums.iter().map(DAcc::finalize_base).collect();
        let mut out_row = Vec::with_capacity(out_exprs.len());
        for e in &out_exprs {
            match eval_row_expr(&subst_aggs(e, &aggs), &st.first_row, &ctx) {
                Ok(v) => out_row.push(v),
                Err(_) => return Ok(DeltaState::Ineligible),
            }
        }
        st.out_hash = output_row_hash(&out_row);
        sum = sum.wrapping_add(st.out_hash);
    }
    let reconstructed = header(groups.len() as u64, cols).wrapping_add(sum);
    if Fingerprint(reconstructed) != base_fp {
        return Ok(DeltaState::Ineligible);
    }

    let rels = relations
        .iter()
        .map(|r| (r.table, footprint_of(r)))
        .collect();
    Ok(DeltaState::Agg(AggDelta {
        base_fp,
        base_out_rows,
        cols,
        width: q.plan.width,
        global,
        rels,
        core,
        group_by,
        specs,
        out_exprs,
        order_exprs,
        watched,
        groups,
    }))
}

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

enum InnerProbe {
    /// The neighbor provably agrees with the base (short circuit).
    Base,
    /// Delta-computed neighbor fingerprint.
    Fp(Fingerprint),
    /// A guard tripped — this neighbor needs full execution.
    NeedFallback,
}

/// Sum of output-row hashes and row count contributed by `rows` of
/// relation `table`, via plan execution with a table override.
fn override_contrib(
    db: &Database,
    plan: &ResolvedSelect,
    table: usize,
    rows: &[Row],
) -> Result<(u128, u64), EngineError> {
    let ctx = ExecContext::with_override(db, table, rows);
    let out = execute(plan, &ctx)?;
    let mut sum = 0u128;
    for r in &out.rows {
        sum = sum.wrapping_add(output_row_hash(r));
    }
    Ok((sum, out.rows.len() as u64))
}

/// Same contribution, answered from the prebuilt join-match index.
fn indexed_contrib(
    db: &Database,
    ix: &IndexedJoin,
    rows: &[Row],
) -> Result<(u128, u64), EngineError> {
    let ctx = ExecContext::new(db);
    let mut sum = 0u128;
    let mut count = 0u64;
    let mut scratch: Row = vec![Value::Null; ix.width];
    'rows: for row in rows {
        for e in &ix.self_local {
            if eval_row_expr(e, row, &ctx)?.as_bool3() != Some(true) {
                continue 'rows;
            }
        }
        let mut key = Vec::with_capacity(ix.self_keys.len());
        for e in &ix.self_keys {
            let v = eval_row_expr(e, row, &ctx)?;
            if matches!(v, Value::Null) {
                continue 'rows;
            }
            key.push(v);
        }
        let Some(bucket) = ix.buckets.get(&key) else {
            continue;
        };
        'cands: for prow in bucket {
            scratch[ix.self_offset..ix.self_offset + ix.self_arity].clone_from_slice(row);
            scratch[ix.partner_offset..ix.partner_offset + prow.len()].clone_from_slice(prow);
            for rc in &ix.residuals {
                if eval_row_expr(rc, &scratch, &ctx)?.as_bool3() != Some(true) {
                    continue 'cands;
                }
            }
            let mut out = Vec::with_capacity(ix.projections.len());
            for p in &ix.projections {
                out.push(eval_row_expr(p, &scratch, &ctx)?);
            }
            for oe in &ix.order_by {
                eval_row_expr(oe, &scratch, &ctx)?;
            }
            sum = sum.wrapping_add(output_row_hash(&out));
            count += 1;
        }
    }
    Ok((sum, count))
}

impl SpjDelta {
    fn try_probe(&self, db: &Database, plan: &ResolvedSelect, up: &SupportUpdate) -> InnerProbe {
        let Some(rp) = self.rels.get(&up.table()) else {
            return InnerProbe::Base; // relation unreferenced by the query
        };
        let eff = up.effective_changed_columns(db);
        if eff.is_empty() || !eff.iter().any(|c| rp.footprint.contains(c)) {
            return InnerProbe::Base; // misses the query's column footprint
        }
        let (old_rows, new_rows) = up.old_new_rows(db);
        let contrib = |rows: &[Row]| match &rp.strategy {
            Strategy::Override => override_contrib(db, plan, up.table(), rows),
            Strategy::Indexed(ix) => indexed_contrib(db, ix, rows),
        };
        match (contrib(&old_rows), contrib(&new_rows)) {
            (Ok((h_rem, k_rem)), Ok((h_add, k_add))) => {
                let n2 = self.base_rows.wrapping_sub(k_rem).wrapping_add(k_add);
                let fp = self
                    .base_fp
                    .0
                    .wrapping_sub(header(self.base_rows, self.cols))
                    .wrapping_add(header(n2, self.cols))
                    .wrapping_sub(h_rem)
                    .wrapping_add(h_add);
                InnerProbe::Fp(Fingerprint(fp))
            }
            // Full execution reproduces (or resolves) the error.
            _ => InnerProbe::NeedFallback,
        }
    }
}

impl AggDelta {
    fn try_probe(&self, db: &Database, up: &SupportUpdate) -> InnerProbe {
        let Some(footprint) = self.rels.get(&up.table()) else {
            return InnerProbe::Base;
        };
        let eff = up.effective_changed_columns(db);
        if eff.is_empty() || !eff.iter().any(|c| footprint.contains(c)) {
            return InnerProbe::Base;
        }
        let (old_rows, new_rows) = up.old_new_rows(db);
        let (Ok((removed, _)), Ok((added, _))) = (
            core_rows(db, &self.core, up.table(), &old_rows),
            core_rows(db, &self.core, up.table(), &new_rows),
        ) else {
            return InnerProbe::NeedFallback;
        };

        let ctx = ExecContext::new(db);
        // Group the moved core rows by key; any eval error → fallback
        // (full execution reproduces genuine errors).
        let mut touched: BTreeMap<Vec<Value>, (Vec<&Row>, Vec<&Row>)> = BTreeMap::new();
        for (rows, slot) in [(&removed, 0usize), (&added, 1usize)] {
            for row in rows {
                let mut key = Vec::with_capacity(self.group_by.len());
                for g in &self.group_by {
                    match eval_row_expr(g, row, &ctx) {
                        Ok(v) => key.push(v),
                        Err(_) => return InnerProbe::NeedFallback,
                    }
                }
                let e = touched.entry(key).or_default();
                if slot == 0 {
                    e.0.push(row);
                } else {
                    e.1.push(row);
                }
            }
        }

        let mut d_sub = 0u128;
        let mut d_add = 0u128;
        let mut d_rows = 0i64;
        let null_row = vec![Value::Null; self.width];
        for (key, (rem, add)) in &touched {
            let base_g = self.groups.get(key);
            let is_real = base_g.map(|g| !g.synthetic).unwrap_or(false);
            if !rem.is_empty() && !is_real {
                return InnerProbe::NeedFallback; // inconsistent with base
            }
            if let Some(g) = base_g {
                if !g.synthetic && !g.watched_clean {
                    return InnerProbe::NeedFallback;
                }
            }
            let (mut count, mut accums, mut rep, mut rep_watched) = match base_g {
                Some(g) if !g.synthetic => (
                    g.count,
                    g.accums.clone(),
                    Some(g.first_row.clone()),
                    g.watched_vals.clone(),
                ),
                _ => {
                    let Some(fresh) = self
                        .specs
                        .iter()
                        .map(DAcc::new)
                        .collect::<Option<Vec<DAcc>>>()
                    else {
                        return InnerProbe::NeedFallback;
                    };
                    (0, fresh, None, Vec::new())
                }
            };
            if (count as usize) < rem.len() {
                return InnerProbe::NeedFallback;
            }
            for row in rem {
                count -= 1;
                for (acc, spec) in accums.iter_mut().zip(&self.specs) {
                    match &spec.arg {
                        None => acc.sub_star(),
                        Some(a) => match eval_row_expr(a, row, &ctx) {
                            Ok(v) => acc.sub(&v),
                            Err(_) => return InnerProbe::NeedFallback,
                        },
                    }
                }
            }
            for row in add {
                count += 1;
                match &rep {
                    Some(_) => {
                        // A new member whose watched slots differ could
                        // become the neighbor's representative — only a
                        // bitwise-agreeing member is provably invisible.
                        if !watched_agree(&rep_watched, row, &self.watched) {
                            return InnerProbe::NeedFallback;
                        }
                    }
                    None => {
                        rep = Some((*row).clone());
                        rep_watched = watched_vals(row, &self.watched);
                    }
                }
                for (acc, spec) in accums.iter_mut().zip(&self.specs) {
                    match &spec.arg {
                        None => acc.add_star(),
                        Some(a) => match eval_row_expr(a, row, &ctx) {
                            Ok(v) => acc.add(v),
                            Err(_) => return InnerProbe::NeedFallback,
                        },
                    }
                }
            }
            // Base output row disappears…
            if let Some(g) = base_g {
                d_sub = d_sub.wrapping_add(g.out_hash);
                d_rows -= 1;
            }
            // …and the recomputed one appears (unless the keyed group died).
            if count > 0 || self.global {
                let rep_row: &[Value] = if count == 0 {
                    &null_row // empty global group: the executor synthesizes
                } else {
                    match &rep {
                        Some(r) => r,
                        None => return InnerProbe::NeedFallback,
                    }
                };
                let Some(aggs) = accums
                    .iter()
                    .map(DAcc::finalize_probe)
                    .collect::<Option<Vec<Value>>>()
                else {
                    return InnerProbe::NeedFallback;
                };
                let mut out_row = Vec::with_capacity(self.out_exprs.len());
                for e in &self.out_exprs {
                    match eval_row_expr(&subst_aggs(e, &aggs), rep_row, &ctx) {
                        Ok(v) => out_row.push(v),
                        Err(_) => return InnerProbe::NeedFallback,
                    }
                }
                for e in &self.order_exprs {
                    if eval_row_expr(&subst_aggs(e, &aggs), rep_row, &ctx).is_err() {
                        return InnerProbe::NeedFallback;
                    }
                }
                d_add = d_add.wrapping_add(output_row_hash(&out_row));
                d_rows += 1;
            }
        }

        let n2 = self.base_out_rows.wrapping_add(d_rows as u64);
        let fp = self
            .base_fp
            .0
            .wrapping_sub(header(self.base_out_rows, self.cols))
            .wrapping_add(header(n2, self.cols))
            .wrapping_sub(d_sub)
            .wrapping_add(d_add);
        InnerProbe::Fp(Fingerprint(fp))
    }
}

/// Core rows contributed by `rows` of `table` (plus the count, unused but
/// kept for symmetry with [`override_contrib`]).
fn core_rows(
    db: &Database,
    core: &ResolvedSelect,
    table: usize,
    rows: &[Row],
) -> Result<(Vec<Row>, u64), EngineError> {
    let ctx = ExecContext::with_override(db, table, rows);
    let out = execute(core, &ctx)?;
    let n = out.rows.len() as u64;
    Ok((out.rows, n))
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Per-call probe tallies, folded into telemetry counters by the engine.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProbeStats {
    /// Neighbors evaluated through the delta path at all.
    pub probes: u64,
    /// Neighbors answered without any execution (agree with base).
    pub short_circuits: u64,
    /// Neighbors that tripped a guard and ran full execution.
    pub fallbacks: u64,
}

#[derive(Debug, Clone, Copy)]
enum Outcome {
    Skipped,
    Base,
    Computed(Fingerprint),
    Fellback(Fingerprint),
}

/// Evaluates one neighbor: delta probe, or full plan execution on a
/// lazily-cloned scratch database when a guard trips.
fn evaluate(
    db: &Database,
    q: &Prepared,
    state: &DeltaState,
    up: &SupportUpdate,
    scratch: &mut Option<Database>,
) -> Result<Outcome, EngineError> {
    let inner = match state {
        DeltaState::Spj(d) => d.try_probe(db, &q.plan, up),
        DeltaState::Agg(d) => d.try_probe(db, up),
        DeltaState::Ineligible => InnerProbe::NeedFallback,
    };
    match inner {
        InnerProbe::Base => Ok(Outcome::Base),
        InnerProbe::Fp(fp) => Ok(Outcome::Computed(fp)),
        InnerProbe::NeedFallback => {
            let clone = scratch.get_or_insert_with(|| db.clone());
            let undo = up.apply(clone);
            let fp = execute(&q.plan, &ExecContext::new(clone)).map(bag_fp);
            apply_writes(clone, &undo);
            Ok(Outcome::Fellback(fp?))
        }
    }
}

fn run_probes(
    db: &Database,
    q: &Prepared,
    state: &DeltaState,
    updates: &[SupportUpdate],
    active: Option<&[bool]>,
    workers: usize,
    tel: &Telemetry,
) -> Result<(Vec<Outcome>, ProbeStats), EngineError> {
    let is_active = |i: usize| {
        active
            .map(|a| a.get(i).copied().unwrap_or(false))
            .unwrap_or(true)
    };
    let outcomes: Vec<Outcome> = if workers > 1 {
        crate::parallel::run_indexed(
            updates.len(),
            workers,
            || None::<Database>,
            |scratch, i| {
                if !is_active(i) {
                    return Ok(Outcome::Skipped);
                }
                evaluate(db, q, state, &updates[i], scratch)
            },
            tel,
        )?
    } else {
        let mut scratch = None;
        let mut out = Vec::with_capacity(updates.len());
        for (i, up) in updates.iter().enumerate() {
            if !is_active(i) {
                out.push(Outcome::Skipped);
                continue;
            }
            out.push(evaluate(db, q, state, up, &mut scratch)?);
        }
        out
    };
    let mut stats = ProbeStats::default();
    for o in &outcomes {
        match o {
            Outcome::Skipped => {}
            Outcome::Base => {
                stats.probes += 1;
                stats.short_circuits += 1;
            }
            Outcome::Computed(_) => stats.probes += 1,
            Outcome::Fellback(_) => {
                stats.probes += 1;
                stats.fallbacks += 1;
            }
        }
    }
    Ok((outcomes, stats))
}

/// Per-neighbor output fingerprints through the delta path (the
/// incremental counterpart of [`crate::naive::query_fps_nbrs`]).
pub(crate) fn query_fps_nbrs(
    db: &Database,
    q: &Prepared,
    state: &DeltaState,
    updates: &[SupportUpdate],
    workers: usize,
    tel: &Telemetry,
) -> Result<(Vec<Fingerprint>, ProbeStats), EngineError> {
    let Some(base) = state.base_fp() else {
        return Err(EngineError::Eval("delta probe on ineligible state".into()));
    };
    let (outcomes, stats) = run_probes(db, q, state, updates, None, workers, tel)?;
    let fps = outcomes
        .iter()
        .map(|o| match o {
            Outcome::Skipped | Outcome::Base => base,
            Outcome::Computed(fp) | Outcome::Fellback(fp) => *fp,
        })
        .collect();
    Ok((fps, stats))
}

/// Per-neighbor disagreement bits through the delta path (the incremental
/// counterpart of [`crate::naive::disagreements_nbrs`]).
pub(crate) fn disagreements_nbrs(
    db: &Database,
    q: &Prepared,
    state: &DeltaState,
    updates: &[SupportUpdate],
    active: &[bool],
    workers: usize,
    tel: &Telemetry,
) -> Result<(Vec<bool>, ProbeStats), EngineError> {
    let Some(base) = state.base_fp() else {
        return Err(EngineError::Eval("delta probe on ineligible state".into()));
    };
    let (outcomes, stats) = run_probes(db, q, state, updates, Some(active), workers, tel)?;
    let bits = outcomes
        .iter()
        .map(|o| match o {
            Outcome::Skipped | Outcome::Base => false,
            Outcome::Computed(fp) | Outcome::Fellback(fp) => *fp != base,
        })
        .collect();
    Ok((bits, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::normal_form::prepare_query;
    use crate::support::{generate_support, SupportConfig};
    use qirana_sqlengine::{ColumnDef, DataType, ExecBudget, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("grp", DataType::Str),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["id"],
            ),
            (0..30i64)
                .map(|i| {
                    vec![
                        i.into(),
                        if i % 3 == 0 { "a" } else { "b" }.into(),
                        (i * 3 % 17).into(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        db.add_table(
            TableSchema::new(
                "U",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("t_id", DataType::Int),
                    ColumnDef::new("w", DataType::Int),
                ],
                &["uid"],
            ),
            (0..20i64)
                .map(|i| vec![i.into(), (i % 30).into(), (i * 7 % 11).into()])
                .collect::<Vec<_>>(),
        );
        db
    }

    fn support(db: &Database, size: usize) -> Vec<SupportUpdate> {
        generate_support(
            db,
            &SupportConfig {
                size,
                ..Default::default()
            },
        )
    }

    fn assert_delta_matches_naive(sql: &str, workers: usize) {
        let mut database = db();
        let updates = support(&database, 160);
        let q = prepare_query(&database, sql).unwrap();
        let state = build(&database, &q).unwrap();
        assert!(state.is_usable(), "delta build declined for {sql}");
        let tel = Telemetry::disabled();
        let (fps, _) = query_fps_nbrs(&database, &q, &state, &updates, workers, &tel).unwrap();
        let naive_fps =
            naive::query_fps_nbrs(&mut database, &q, &updates, ExecBudget::UNLIMITED).unwrap();
        assert_eq!(fps, naive_fps, "fps diverged for {sql}");
        let active = vec![true; updates.len()];
        let (bits, _) =
            disagreements_nbrs(&database, &q, &state, &updates, &active, workers, &tel).unwrap();
        let naive_bits =
            naive::disagreements_nbrs(&mut database, &q, &updates, &active, ExecBudget::UNLIMITED)
                .unwrap();
        assert_eq!(bits, naive_bits, "bits diverged for {sql}");
    }

    #[test]
    fn spj_single_table_matches_naive() {
        assert_delta_matches_naive("select v from T where grp = 'a'", 1);
        assert_delta_matches_naive("select id, grp from T where v > 7", 1);
        assert_delta_matches_naive("select * from T", 4);
    }

    #[test]
    fn spj_join_matches_naive() {
        assert_delta_matches_naive(
            "select T.grp, U.w from T, U where T.id = U.t_id and U.w > 2",
            1,
        );
        assert_delta_matches_naive(
            "select T.v from T join U on T.id = U.t_id where T.grp = 'b'",
            4,
        );
    }

    #[test]
    fn agg_matches_naive() {
        assert_delta_matches_naive("select grp, count(*), sum(v) from T group by grp", 1);
        assert_delta_matches_naive("select grp, min(v), max(v), avg(v) from T group by grp", 1);
        assert_delta_matches_naive("select count(*) from T where v > 5", 1);
        assert_delta_matches_naive(
            "select T.grp, sum(U.w) from T, U where T.id = U.t_id group by T.grp",
            4,
        );
    }

    #[test]
    fn join_key_swaps_match_naive() {
        // Swaps that move the join key relocate rows across hash buckets —
        // the delta must still agree with full execution bitwise.
        let mut database = db();
        let q =
            prepare_query(&database, "select T.grp, U.w from T, U where T.id = U.t_id").unwrap();
        let updates: Vec<SupportUpdate> = (0..10)
            .map(|i| SupportUpdate::Swap {
                table: 1,
                row_a: i,
                row_b: i + 10,
                cols: vec![1], // t_id: the join column
            })
            .collect();
        let state = build(&database, &q).unwrap();
        let tel = Telemetry::disabled();
        let (fps, stats) = query_fps_nbrs(&database, &q, &state, &updates, 1, &tel).unwrap();
        let naive_fps =
            naive::query_fps_nbrs(&mut database, &q, &updates, ExecBudget::UNLIMITED).unwrap();
        assert_eq!(fps, naive_fps);
        assert_eq!(stats.probes, 10);
    }

    #[test]
    fn unreferenced_table_short_circuits() {
        let database = db();
        let q = prepare_query(&database, "select v from T where v > 3").unwrap();
        let updates: Vec<SupportUpdate> = (0..6)
            .map(|i| SupportUpdate::Row {
                table: 1, // U: never referenced
                row: i,
                changes: vec![(2, Value::Int(999 + i as i64))],
            })
            .collect();
        let state = build(&database, &q).unwrap();
        let tel = Telemetry::disabled();
        let (bits, stats) = disagreements_nbrs(
            &database,
            &q,
            &state,
            &updates,
            &vec![true; updates.len()],
            1,
            &tel,
        )
        .unwrap();
        assert!(bits.iter().all(|b| !b));
        assert_eq!(stats.short_circuits, 6);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn footprint_miss_short_circuits() {
        let database = db();
        // The query reads only T.v and T.grp; id is the key (never
        // updated), so a w-update on U and a grp-miss on T both agree.
        let q = prepare_query(&database, "select v from T where v < 9").unwrap();
        let updates = vec![SupportUpdate::Row {
            table: 0,
            row: 2,
            changes: vec![(1, "z".into())], // grp: outside the footprint
        }];
        let state = build(&database, &q).unwrap();
        let tel = Telemetry::disabled();
        let (fps, stats) = query_fps_nbrs(&database, &q, &state, &updates, 1, &tel).unwrap();
        assert_eq!(stats.short_circuits, 1);
        let mut database = db();
        let naive_fps =
            naive::query_fps_nbrs(&mut database, &q, &updates, ExecBudget::UNLIMITED).unwrap();
        assert_eq!(fps, naive_fps);
    }

    #[test]
    fn noop_swap_short_circuits_via_effective_columns() {
        let mut database = db();
        // Rows 0 and 3 of T share grp 'a' (0 % 3 == 3 % 3 == 0): the swap
        // declares grp changed but effectively changes nothing.
        let up = SupportUpdate::Swap {
            table: 0,
            row_a: 0,
            row_b: 3,
            cols: vec![1],
        };
        assert!(!up.is_effective(&database));
        let q = prepare_query(&database, "select grp from T where v >= 0").unwrap();
        let state = build(&database, &q).unwrap();
        let tel = Telemetry::disabled();
        let updates = vec![up];
        let (fps, stats) = query_fps_nbrs(&database, &q, &state, &updates, 1, &tel).unwrap();
        assert_eq!(stats.short_circuits, 1, "declared-but-ineffective swap");
        let naive_fps =
            naive::query_fps_nbrs(&mut database, &q, &updates, ExecBudget::UNLIMITED).unwrap();
        assert_eq!(fps, naive_fps);
    }

    #[test]
    fn self_join_is_ineligible() {
        let database = db();
        // Self-joins break per-tuple contribution additivity; the shape
        // classifier routes them to Opaque and the build must decline.
        let q = prepare_query(&database, "select a.v from T a, T b where a.id = b.id").unwrap();
        let state = build(&database, &q).unwrap();
        assert!(!state.is_usable());
        let err =
            query_fps_nbrs(&database, &q, &state, &[], 1, &Telemetry::disabled()).unwrap_err();
        assert!(matches!(err, EngineError::Eval(_)));
    }

    #[test]
    fn agg_empty_group_by_empty_input() {
        // Global aggregate over an empty filter result: the executor
        // synthesizes one all-NULL-sourced row; neighbors can create and
        // destroy real groups around it.
        let mut database = db();
        let q = prepare_query(&database, "select count(*), sum(v) from T where v > 1000").unwrap();
        let updates = support(&database, 80);
        let state = build(&database, &q).unwrap();
        assert!(state.is_usable());
        let tel = Telemetry::disabled();
        let (fps, _) = query_fps_nbrs(&database, &q, &state, &updates, 1, &tel).unwrap();
        let naive_fps =
            naive::query_fps_nbrs(&mut database, &q, &updates, ExecBudget::UNLIMITED).unwrap();
        assert_eq!(fps, naive_fps);
    }

    #[test]
    fn float_sums_fall_back_not_diverge() {
        // Float aggregate arguments make the executor's accumulation
        // order-dependent; affected probes must fall back to full
        // execution and still match naive bitwise.
        let mut database = Database::new();
        database.add_table(
            TableSchema::new(
                "F",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("g", DataType::Int),
                    ColumnDef::new("x", DataType::Float),
                ],
                &["id"],
            ),
            (0..12i64)
                .map(|i| vec![i.into(), (i % 2).into(), Value::Float(i as f64 + 0.25)])
                .collect::<Vec<_>>(),
        );
        let q = prepare_query(&database, "select g, sum(x), avg(x) from F group by g").unwrap();
        let updates: Vec<SupportUpdate> = (0..8)
            .map(|i| SupportUpdate::Row {
                table: 0,
                row: i,
                changes: vec![(2, Value::Float(100.5 + i as f64))],
            })
            .collect();
        let state = build(&database, &q).unwrap();
        assert!(state.is_usable());
        let tel = Telemetry::disabled();
        let (fps, stats) = query_fps_nbrs(&database, &q, &state, &updates, 1, &tel).unwrap();
        assert_eq!(stats.fallbacks, 8, "float sums must route to fallback");
        let naive_fps =
            naive::query_fps_nbrs(&mut database, &q, &updates, ExecBudget::UNLIMITED).unwrap();
        assert_eq!(fps, naive_fps);
    }
}
