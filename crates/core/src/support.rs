//! Support-set generation (§3.2).
//!
//! The random-neighborhood (`nbrs`) generator follows the paper's recipe:
//!
//! 1. pick the relation to update uniformly at random;
//! 2. include each non-key attribute independently with probability 0.5
//!    (biasing toward databases close to `D`);
//! 3. choose row vs. swap update by the configured ratio `ρ`; pick one (two)
//!    uniformly random tuple(s);
//! 4. sample replacement values from the attribute's domain — the seller's
//!    declared [`qirana_sqlengine::Domain`] if present, the active domain
//!    otherwise — always different from the stored value, so every support
//!    element is a genuinely distinct neighboring instance.
//!
//! The random-uniform (`uniform`) generator materializes whole random
//! databases from `I` instead; §2.4 shows why it prices poorly (a uniformly
//! random database is far from `D`, so almost every query disagrees), and
//! its memory footprint is `|D| × S` — both reproduced by our Figure 2/6
//! harnesses.

use crate::fault;
use crate::update::SupportUpdate;
use qirana_sqlengine::{Database, Domain, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Configuration for the `nbrs` support-set generator.
#[derive(Debug, Clone)]
pub struct SupportConfig {
    /// Number of support-set elements `S`.
    pub size: usize,
    /// Fraction of swap updates (0.0 = all row updates, 1.0 = all swaps).
    /// The paper's default is a 1:1 ratio, i.e. `0.5` (§5).
    pub swap_fraction: f64,
    /// Per-attribute inclusion probability (paper: 0.5, giving a geometric
    /// number of modified attributes).
    pub attr_prob: f64,
    /// RNG seed; fixed seed ⇒ reproducible support set.
    pub seed: u64,
}

impl Default for SupportConfig {
    fn default() -> Self {
        SupportConfig {
            size: 1000,
            swap_fraction: 0.5,
            attr_prob: 0.5,
            seed: 0x0051_7241_4e41,
        }
    }
}

/// Why support generation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupportError {
    /// No relation can be updated: every table is empty or key-only.
    NoUpdatableRelation,
    /// Generation could not produce enough distinct neighbors (data too
    /// constant); carries the number generated before stalling.
    Stalled { generated: usize },
    /// A fault-injection failpoint fired.
    Injected(fault::InjectedFault),
}

impl fmt::Display for SupportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupportError::NoUpdatableRelation => {
                write!(f, "no relation is updatable (all empty or key-only)")
            }
            SupportError::Stalled { generated } => write!(
                f,
                "support generation stalled after {generated} updates; \
                 data too constant for neighbors"
            ),
            SupportError::Injected(fault) => write!(f, "injected fault: {fault}"),
        }
    }
}

impl std::error::Error for SupportError {}

/// A generated support set: either neighborhood updates or whole uniform
/// random databases.
#[derive(Debug, Clone)]
pub enum SupportSet {
    /// Neighboring instances represented as updates (`nbrs`).
    Neighborhood(Vec<SupportUpdate>),
    /// Materialized uniform random instances (`uniform`).
    Uniform(Vec<Database>),
}

impl SupportSet {
    /// Number of support instances.
    pub fn len(&self) -> usize {
        match self {
            SupportSet::Neighborhood(u) => u.len(),
            SupportSet::Uniform(d) => d.len(),
        }
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The updates, if this is a neighborhood support set.
    pub fn updates(&self) -> Option<&[SupportUpdate]> {
        match self {
            SupportSet::Neighborhood(u) => Some(u),
            SupportSet::Uniform(_) => None,
        }
    }
}

/// Per-column value sampler honoring the declared or active domain.
struct ColumnSampler {
    domain: Domain,
    active: Vec<Value>,
}

impl ColumnSampler {
    fn new(db: &Database, table: usize, col: usize) -> Self {
        let t = db.table_at(table);
        let domain = t.schema.columns[col].domain.clone();
        let active = if domain.is_active() {
            t.active_domain(col)
        } else {
            Vec::new()
        };
        ColumnSampler { domain, active }
    }

    /// Samples a domain value; `None` if the domain is empty.
    fn sample(&self, rng: &mut StdRng) -> Option<Value> {
        match &self.domain {
            Domain::Active => {
                if self.active.is_empty() {
                    None
                } else {
                    Some(self.active[rng.gen_range(0..self.active.len())].clone())
                }
            }
            Domain::Values(vs) => {
                if vs.is_empty() {
                    None
                } else {
                    Some(vs[rng.gen_range(0..vs.len())].clone())
                }
            }
            Domain::IntRange(lo, hi) => Some(Value::Int(rng.gen_range(*lo..=*hi))),
            Domain::FloatRange(lo, hi) => Some(Value::Float(rng.gen_range(*lo..=*hi))),
        }
    }

    /// Samples a value different from `current`; `None` if impossible.
    fn sample_different(&self, rng: &mut StdRng, current: &Value) -> Option<Value> {
        // Finite domains where every value equals `current` can never
        // produce a neighbor; bounded retries cover the rest.
        for _ in 0..32 {
            let v = self.sample(rng)?;
            if v != *current {
                return Some(v);
            }
        }
        None
    }
}

/// Generates an `nbrs` support set of `cfg.size` updates.
///
/// # Panics
/// Panics if the database has no updatable relation (every relation empty
/// or key-only), or if generation stalls (pathologically constant data).
/// Use [`try_generate_support`] to handle those conditions as errors.
#[allow(clippy::panic)] // documented panicking wrapper over try_generate_support
pub fn generate_support(db: &Database, cfg: &SupportConfig) -> Vec<SupportUpdate> {
    try_generate_support(db, cfg).unwrap_or_else(|e| panic!("{e}")) // qirana-lint::allow(QL007): documented panicking wrapper over try_generate_support
}

/// Fallible form of [`generate_support`]: returns [`SupportError`] instead
/// of panicking, and honors the [`fault::SUPPORT_GENERATE`] failpoint.
pub fn try_generate_support(
    db: &Database,
    cfg: &SupportConfig,
) -> Result<Vec<SupportUpdate>, SupportError> {
    fault::check(fault::SUPPORT_GENERATE).map_err(SupportError::Injected)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let candidates: Vec<usize> = (0..db.num_tables())
        .filter(|&t| {
            let tab = db.table_at(t);
            !tab.is_empty() && !tab.schema.non_key_columns().is_empty()
        })
        .collect();
    if candidates.is_empty() {
        return Err(SupportError::NoUpdatableRelation);
    }

    // Samplers built lazily per touched column.
    let mut samplers: std::collections::HashMap<(usize, usize), ColumnSampler> =
        std::collections::HashMap::new();

    let mut out = Vec::with_capacity(cfg.size);
    let mut stall = 0usize;
    while out.len() < cfg.size {
        stall += 1;
        if stall >= cfg.size * 100 + 10_000 {
            return Err(SupportError::Stalled {
                generated: out.len(),
            });
        }
        // 1. relation, uniformly.
        let table = candidates[rng.gen_range(0..candidates.len())];
        let tab = db.table_at(table);
        let non_key = tab.schema.non_key_columns();

        // 2. attribute subset: the paper draws the number of modified
        //    attributes from a geometric distribution with p = attr_prob
        //    ("to be more biased to databases that will be closer to D"),
        //    so most updates touch a single attribute. Draw k ~ Geom(p)
        //    capped at the arity, then pick k distinct attributes.
        let mut k = 1usize;
        while k < non_key.len() && !rng.gen_bool(cfg.attr_prob) {
            k += 1;
        }
        let mut pool = non_key.clone();
        let mut cols = Vec::with_capacity(k);
        for _ in 0..k {
            let pick = rng.gen_range(0..pool.len());
            cols.push(pool.swap_remove(pick));
        }
        cols.sort_unstable();

        // 3. row vs. swap.
        let want_swap = rng.gen_bool(cfg.swap_fraction) && tab.len() >= 2;
        if want_swap {
            let row_a = rng.gen_range(0..tab.len());
            let mut row_b = rng.gen_range(0..tab.len());
            if row_a == row_b {
                row_b = (row_b + 1) % tab.len();
            }
            let up = SupportUpdate::Swap {
                table,
                row_a,
                row_b,
                cols,
            };
            if up.is_effective(db) {
                out.push(up);
            }
        } else {
            let row = rng.gen_range(0..tab.len());
            let mut changes = Vec::with_capacity(cols.len());
            for c in cols {
                let sampler = samplers
                    .entry((table, c))
                    .or_insert_with(|| ColumnSampler::new(db, table, c));
                if let Some(v) = sampler.sample_different(&mut rng, &tab.rows[row][c]) {
                    changes.push((c, v));
                }
            }
            if !changes.is_empty() {
                out.push(SupportUpdate::Row {
                    table,
                    row,
                    changes,
                });
            }
        }
    }
    Ok(out)
}

/// Generates `count` uniform random databases from `I` (same schema, keys,
/// and cardinalities; every non-key cell resampled from its domain).
pub fn generate_uniform_worlds(db: &Database, count: usize, seed: u64) -> Vec<Database> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Pre-build samplers for all non-key columns.
    let mut samplers: Vec<Vec<Option<ColumnSampler>>> = Vec::new();
    for t in 0..db.num_tables() {
        let tab = db.table_at(t);
        let mut per_col = Vec::with_capacity(tab.schema.arity());
        for c in 0..tab.schema.arity() {
            if tab.schema.is_key_column(c) {
                per_col.push(None);
            } else {
                per_col.push(Some(ColumnSampler::new(db, t, c)));
            }
        }
        samplers.push(per_col);
    }

    (0..count)
        .map(|_| {
            let mut world = db.clone();
            let mut changed = false;
            for (t, per_col) in samplers.iter().enumerate() {
                let nrows = world.table_at(t).len();
                for r in 0..nrows {
                    for (c, sampler) in per_col.iter().enumerate() {
                        if let Some(s) = sampler {
                            if let Some(v) = s.sample(&mut rng) {
                                if world.table_at(t).rows[r][c] != v {
                                    changed = true;
                                }
                                world.table_at_mut(t).set_cell(r, c, v);
                            }
                        }
                    }
                }
            }
            // `I \ {D}`: in the astronomically unlikely event we resampled D
            // itself, perturb one cell to a different domain value.
            if !changed {
                'fix: for (t, per_col) in samplers.iter().enumerate() {
                    for (c, sampler) in per_col.iter().enumerate() {
                        if let Some(s) = sampler {
                            let cur = world.table_at(t).rows[0][c].clone();
                            if let Some(v) = s.sample_different(&mut rng, &cur) {
                                world.table_at_mut(t).set_cell(0, c, v);
                                break 'fix;
                            }
                        }
                    }
                }
            }
            world
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            vec![
                vec![1.into(), "m".into(), 25.into()],
                vec![2.into(), "f".into(), 13.into()],
                vec![3.into(), "m".into(), 45.into()],
                vec![4.into(), "f".into(), 19.into()],
            ],
        );
        db.add_table(
            TableSchema::new(
                "Tweet",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("location", DataType::Str),
                ],
                &["tid"],
            ),
            vec![
                vec![1.into(), 3.into(), "CA".into()],
                vec![2.into(), 3.into(), "WA".into()],
                vec![3.into(), 1.into(), "OR".into()],
                vec![4.into(), 2.into(), "CA".into()],
            ],
        );
        db
    }

    #[test]
    fn generates_requested_size() {
        let db = db();
        let s = generate_support(&db, &SupportConfig::default());
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn all_updates_effective_and_non_key() {
        let db = db();
        let s = generate_support(
            &db,
            &SupportConfig {
                size: 500,
                ..Default::default()
            },
        );
        for up in &s {
            assert!(up.is_effective(&db), "ineffective update {up:?}");
            let schema = &db.table_at(up.table()).schema;
            for c in up.changed_columns() {
                assert!(!schema.is_key_column(c), "update touches a key column");
            }
        }
    }

    #[test]
    fn swap_fraction_respected() {
        let db = db();
        let s = generate_support(
            &db,
            &SupportConfig {
                size: 2000,
                swap_fraction: 1.0,
                ..Default::default()
            },
        );
        assert!(s.iter().all(|u| matches!(u, SupportUpdate::Swap { .. })));
        let s = generate_support(
            &db,
            &SupportConfig {
                size: 2000,
                swap_fraction: 0.0,
                ..Default::default()
            },
        );
        assert!(s.iter().all(|u| matches!(u, SupportUpdate::Row { .. })));
    }

    #[test]
    fn deterministic_under_seed() {
        let db = db();
        let cfg = SupportConfig {
            size: 100,
            seed: 99,
            ..Default::default()
        };
        assert_eq!(generate_support(&db, &cfg), generate_support(&db, &cfg));
    }

    #[test]
    fn try_generate_reports_no_updatable_relation() {
        let mut key_only = Database::new();
        key_only.add_table(
            TableSchema::new("K", vec![ColumnDef::new("id", DataType::Int)], &["id"]),
            vec![vec![1.into()], vec![2.into()]],
        );
        let err = try_generate_support(&key_only, &SupportConfig::default()).unwrap_err();
        assert_eq!(err, SupportError::NoUpdatableRelation);
    }

    #[test]
    fn injected_fault_surfaces_as_support_error() {
        let db = db();
        let _guard = fault::serialize_tests();
        fault::reset();
        fault::arm(fault::SUPPORT_GENERATE, fault::Trigger::Once);
        let err = try_generate_support(&db, &SupportConfig::default()).unwrap_err();
        assert!(matches!(err, SupportError::Injected(_)), "got {err:?}");
        // Disarmed after firing once: generation works again.
        assert!(try_generate_support(&db, &SupportConfig::default()).is_ok());
        fault::reset();
    }

    #[test]
    fn row_update_values_from_active_domain() {
        let db = db();
        let s = generate_support(
            &db,
            &SupportConfig {
                size: 300,
                swap_fraction: 0.0,
                ..Default::default()
            },
        );
        let genders: Vec<Value> = vec!["f".into(), "m".into()];
        for up in &s {
            if let SupportUpdate::Row { table, changes, .. } = up {
                for (c, v) in changes {
                    if *table == 0 && *c == 1 {
                        assert!(genders.contains(v), "gender {v} outside active domain");
                    }
                }
            }
        }
    }

    #[test]
    fn explicit_domain_respected() {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "T",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::with_domain("v", DataType::Int, Domain::IntRange(100, 200)),
                ],
                &["id"],
            ),
            vec![vec![1.into(), 150.into()], vec![2.into(), 160.into()]],
        );
        let s = generate_support(
            &db,
            &SupportConfig {
                size: 200,
                swap_fraction: 0.0,
                ..Default::default()
            },
        );
        for up in &s {
            if let SupportUpdate::Row { changes, .. } = up {
                for (_, v) in changes {
                    let x = v.as_i64().unwrap();
                    assert!((100..=200).contains(&x), "value {x} outside range");
                }
            }
        }
    }

    #[test]
    fn uniform_worlds_differ_from_base() {
        let db = db();
        let worlds = generate_uniform_worlds(&db, 10, 5);
        assert_eq!(worlds.len(), 10);
        for w in &worlds {
            assert_eq!(w.total_rows(), db.total_rows(), "cardinality preserved");
            let differs = (0..db.num_tables()).any(|t| db.table_at(t).rows != w.table_at(t).rows);
            assert!(differs, "uniform world equals the base instance");
            // Keys preserved.
            for t in 0..db.num_tables() {
                for (r0, r1) in db.table_at(t).rows.iter().zip(&w.table_at(t).rows) {
                    for &k in &db.table_at(t).schema.primary_key {
                        assert_eq!(r0[k], r1[k], "key column changed");
                    }
                }
            }
        }
    }

    #[test]
    fn support_set_len() {
        let db = db();
        let nbrs = SupportSet::Neighborhood(generate_support(
            &db,
            &SupportConfig {
                size: 7,
                ..Default::default()
            },
        ));
        assert_eq!(nbrs.len(), 7);
        assert!(nbrs.updates().is_some());
        let unif = SupportSet::Uniform(generate_uniform_worlds(&db, 3, 1));
        assert_eq!(unif.len(), 3);
        assert!(unif.updates().is_none());
    }
}
