//! Weight assignment (§3.3): from a single total price, or from seller
//! price points via entropy maximization.
//!
//! The default assignment gives every support instance the same weight
//! `P/S`. When the seller supplies price points `(Qⱼ, pⱼ)` — "relation User
//! costs 70", "the age column costs 50" — the weights become the solution
//! of the entropy-maximization program, solved by [`qirana_solver`]
//! (replacing the paper's CVXPY + SCS). Infeasibility is surfaced so the
//! broker can resample or enlarge the support set, exactly the reaction
//! §3.3 describes.

use crate::engine::{bundle_disagreements, EngineOptions};
use crate::fault;
use crate::normal_form::prepare_query;
use crate::support::SupportSet;
use qirana_solver::{solve_with, AbortCause, MaxEntProblem, SolveResult, SolverOptions};
use qirana_sqlengine::Database;
use std::fmt;

/// A seller price point: the query `sql` must cost exactly `price`.
#[derive(Debug, Clone)]
pub struct PricePoint {
    pub sql: String,
    pub price: f64,
}

impl PricePoint {
    /// Convenience constructor.
    pub fn new(sql: impl Into<String>, price: f64) -> Self {
        PricePoint {
            sql: sql.into(),
            price,
        }
    }
}

/// Why weight assignment failed.
#[derive(Debug, Clone)]
pub enum WeightError {
    /// A price-point query failed to parse/plan/execute.
    BadPricePoint { sql: String, error: String },
    /// The entropy-maximization program is infeasible for this support set.
    Infeasible { reason: String },
    /// The solver hit its deadline or diverged numerically before reaching
    /// a verdict. Unlike [`WeightError::Infeasible`], retrying (more time,
    /// a resampled support set) may succeed.
    SolverAborted {
        cause: AbortCause,
        iterations: usize,
        residual: f64,
    },
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightError::BadPricePoint { sql, error } => {
                write!(f, "price point query {sql:?} failed: {error}")
            }
            WeightError::Infeasible { reason } => {
                write!(f, "price points infeasible for this support set: {reason}")
            }
            WeightError::SolverAborted {
                cause,
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "weight solve aborted ({cause:?}) after {iterations} iterations \
                     (residual {residual:.2e})"
                )
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// Uniform weights `P/S` — every part of the data equally valuable.
pub fn uniform_weights(support_size: usize, total_price: f64) -> Vec<f64> {
    assert!(support_size > 0, "support set must be non-empty");
    // qirana-lint::allow(QL002): support-set size, far below 2^53
    vec![total_price / support_size as f64; support_size]
}

/// Solves for max-entropy weights honoring the total price and all price
/// points. With no price points this returns the uniform assignment
/// directly (the program's closed-form optimum).
pub fn assign_weights(
    db: &mut Database,
    support: &SupportSet,
    total_price: f64,
    points: &[PricePoint],
    opts: &EngineOptions,
) -> Result<Vec<f64>, WeightError> {
    assign_weights_with(
        db,
        support,
        total_price,
        points,
        opts,
        &SolverOptions::default(),
    )
}

/// [`assign_weights`] with explicit solver options (deadline, tolerance,
/// iteration cap) — the broker's retry loop threads its per-attempt time
/// limit through here.
pub fn assign_weights_with(
    db: &mut Database,
    support: &SupportSet,
    total_price: f64,
    points: &[PricePoint],
    opts: &EngineOptions,
    solver: &SolverOptions,
) -> Result<Vec<f64>, WeightError> {
    fault::check(fault::WEIGHTS_ASSIGN).map_err(|f| WeightError::Infeasible {
        reason: format!("injected fault: {f}"),
    })?;
    let s = support.len();
    if points.is_empty() {
        return Ok(uniform_weights(s, total_price));
    }

    // Row 0: Σ wᵢ = P. Row j: Σ_{i : Qⱼ(Dᵢ) ≠ Qⱼ(D)} wᵢ = pⱼ.
    let mut a: Vec<Vec<f64>> = vec![vec![1.0; s]];
    let mut b: Vec<f64> = vec![total_price];
    for pt in points {
        let prepared = prepare_query(db, &pt.sql).map_err(|e| WeightError::BadPricePoint {
            sql: pt.sql.clone(),
            error: e.to_string(),
        })?;
        let bits = bundle_disagreements(db, &[&prepared], support, opts, None).map_err(|e| {
            WeightError::BadPricePoint {
                sql: pt.sql.clone(),
                error: e.to_string(),
            }
        })?;
        a.push(bits.iter().map(|&d| if d { 1.0 } else { 0.0 }).collect());
        b.push(pt.price);
    }

    match solve_with(&MaxEntProblem { a, b, n: s }, solver) {
        SolveResult::Optimal { weights, .. } => Ok(weights),
        SolveResult::Infeasible { reason } => Err(WeightError::Infeasible { reason }),
        SolveResult::Aborted {
            cause,
            iterations,
            residual,
        } => Err(WeightError::SolverAborted {
            cause,
            iterations,
            residual,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::{generate_support, SupportConfig, SupportSet};
    use qirana_sqlengine::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.add_table(
            TableSchema::new(
                "User",
                vec![
                    ColumnDef::new("uid", DataType::Int),
                    ColumnDef::new("gender", DataType::Str),
                    ColumnDef::new("age", DataType::Int),
                ],
                &["uid"],
            ),
            (1..=8i64)
                .map(|i| {
                    vec![
                        i.into(),
                        if i % 2 == 0 { "f" } else { "m" }.into(),
                        (10 + i * 3).into(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        db.add_table(
            TableSchema::new(
                "Tweet",
                vec![
                    ColumnDef::new("tid", DataType::Int),
                    ColumnDef::new("uid", DataType::Int),
                ],
                &["tid"],
            ),
            (1..=6i64)
                .map(|i| vec![i.into(), (i % 8 + 1).into()])
                .collect::<Vec<_>>(),
        );
        db
    }

    fn support(db: &Database, size: usize) -> SupportSet {
        SupportSet::Neighborhood(generate_support(
            db,
            &SupportConfig {
                size,
                ..Default::default()
            },
        ))
    }

    #[test]
    fn uniform_default() {
        let w = uniform_weights(4, 100.0);
        assert_eq!(w, vec![25.0; 4]);
    }

    #[test]
    fn no_points_gives_uniform() {
        let mut database = db();
        let s = support(&database, 50);
        let w = assign_weights(&mut database, &s, 100.0, &[], &EngineOptions::default()).unwrap();
        assert_eq!(w, vec![2.0; 50]);
    }

    #[test]
    fn relation_price_point_honored() {
        let mut database = db();
        let s = support(&database, 400);
        let points = [PricePoint::new("SELECT * FROM User", 70.0)];
        let w =
            assign_weights(&mut database, &s, 100.0, &points, &EngineOptions::default()).unwrap();
        assert_eq!(w.len(), 400);
        assert!((w.iter().sum::<f64>() - 100.0).abs() < 1e-5);
        // Re-derive the constraint: User-touching updates must carry 70.
        let q = prepare_query(&database, "SELECT * FROM User").unwrap();
        let bits = bundle_disagreements(&mut database, &[&q], &s, &EngineOptions::default(), None)
            .unwrap();
        let user_mass: f64 = w
            .iter()
            .zip(&bits)
            .filter(|(_, &d)| d)
            .map(|(w, _)| *w)
            .sum();
        assert!((user_mass - 70.0).abs() < 1e-5, "got {user_mass}");
    }

    #[test]
    fn infeasible_point_detected() {
        let mut database = db();
        let s = support(&database, 100);
        // A subset of the data priced above the whole dataset.
        let points = [PricePoint::new("SELECT * FROM User", 170.0)];
        let err = assign_weights(&mut database, &s, 100.0, &points, &EngineOptions::default())
            .unwrap_err();
        assert!(matches!(err, WeightError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn bad_sql_reported() {
        let mut database = db();
        let s = support(&database, 10);
        let points = [PricePoint::new("SELECT nope FROM User", 10.0)];
        let err = assign_weights(&mut database, &s, 100.0, &points, &EngineOptions::default())
            .unwrap_err();
        assert!(matches!(err, WeightError::BadPricePoint { .. }));
    }

    #[test]
    fn attribute_level_point() {
        let mut database = db();
        let s = support(&database, 400);
        let points = [
            PricePoint::new("SELECT uid, age FROM User", 50.0),
            PricePoint::new("SELECT * FROM User", 70.0),
        ];
        let w =
            assign_weights(&mut database, &s, 100.0, &points, &EngineOptions::default()).unwrap();
        assert!((w.iter().sum::<f64>() - 100.0).abs() < 1e-5);
        assert!(w.iter().all(|&x| x >= -1e-12), "weights nonnegative");
    }
}
