//! Concurrency models for the work-distribution protocol of
//! `qirana_core::parallel::run_indexed`, run under the vendored loom
//! stand-in's schedule perturbation (see `vendor/loom` for what that does
//! and does not guarantee).
//!
//! The models restate the executor's protocol — a chunked atomic steal
//! counter, a cooperative stop flag, index-addressed result slots, and
//! lowest-index-error selection — with loom's instrumented primitives, and
//! assert the three invariants the pricing layer's determinism rests on:
//!
//! 1. every index in `0..n` is claimed by exactly one worker;
//! 2. the merged result is index-ordered and complete, no matter which
//!    worker computed which slot or in what order;
//! 3. when several workers fail, the error carrying the lowest index wins,
//!    and an error in the very first chunk always beats any later one.
//!
//! Build-gated: `cargo test -p qirana-core --features loom --test loom`.
#![cfg(feature = "loom")]
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};

/// Mirrors `parallel::CHUNK`, scaled down so a model run has several
/// steals per worker.
const CHUNK: usize = 4;

/// One worker of the steal loop. `fail` marks indices whose "execution"
/// errors; the worker records claims, raises `stop`, and reports its first
/// error exactly as `run_indexed`'s closure loop does.
#[allow(clippy::type_complexity)]
fn worker(
    n: usize,
    next: &AtomicUsize,
    stop: &AtomicBool,
    claims: &[AtomicUsize],
    fail: &dyn Fn(usize) -> bool,
) -> (Vec<(usize, usize)>, Option<usize>) {
    let mut out = Vec::new();
    let mut err = None;
    'steal: while !stop.load(Ordering::Relaxed) {
        let start = next.fetch_add(CHUNK, Ordering::Relaxed);
        if start >= n {
            break;
        }
        for i in start..(start + CHUNK).min(n) {
            claims[i].fetch_add(1, Ordering::Relaxed);
            if fail(i) {
                stop.store(true, Ordering::Relaxed);
                err = Some(i);
                break 'steal;
            }
            out.push((i, i * 10 + 1)); // a value recomputable from i
        }
    }
    (out, err)
}

/// Spawns `workers` threads over `0..n` and merges their results the way
/// `run_indexed` does: slots by index, lowest-index error wins.
#[allow(clippy::type_complexity)]
fn run_model(
    n: usize,
    workers: usize,
    fail: fn(usize) -> bool,
) -> (Vec<AtomicUsize>, Vec<Option<usize>>, Option<usize>) {
    let next = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
    let results = Arc::new(Mutex::new(Vec::new()));

    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let (next, stop, claims, results) = (
                Arc::clone(&next),
                Arc::clone(&stop),
                Arc::clone(&claims),
                Arc::clone(&results),
            );
            loom::thread::spawn(move || {
                let r = worker(n, &next, &stop, &claims, &fail);
                results.lock().unwrap().push(r);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("model worker panicked");
    }

    let mut slots: Vec<Option<usize>> = vec![None; n];
    let mut first_err: Option<usize> = None;
    for (out, err) in results.lock().unwrap().drain(..) {
        for (i, v) in out {
            assert!(slots[i].is_none(), "slot {i} written twice");
            slots[i] = Some(v);
        }
        if let Some(i) = err {
            if first_err.is_none_or(|j| i < j) {
                first_err = Some(i);
            }
        }
    }
    let claims = Arc::try_unwrap(claims).expect("all workers joined");
    (claims, slots, first_err)
}

#[test]
fn every_index_claimed_exactly_once() {
    loom::model(|| {
        // 23 indices, 3 workers: a non-multiple of CHUNK forces a partial
        // final chunk, and more steals than workers forces interleaving.
        let (claims, _, err) = run_model(23, 3, |_| false);
        assert_eq!(err, None);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "index {i} claim count");
        }
    });
}

#[test]
fn merge_is_index_ordered_and_complete() {
    loom::model(|| {
        let (_, slots, err) = run_model(29, 4, |_| false);
        assert_eq!(err, None);
        for (i, s) in slots.iter().enumerate() {
            // The slot holds i's own value: results cannot land in another
            // index's slot whatever the steal order was.
            assert_eq!(*s, Some(i * 10 + 1), "slot {i}");
        }
    });
}

#[test]
fn lowest_index_error_wins() {
    loom::model(|| {
        // Indices 2 and 17 fail. Index 2 sits in the first chunk, which is
        // always claimed (the first fetch_add returns 0 before any stop
        // can be raised), so the merged error must be 2 even when another
        // worker reaches 17 first and stops the pool.
        let (claims, _, err) = run_model(23, 3, |i| i == 2 || i == 17);
        assert_eq!(err, Some(2));
        assert_eq!(claims[2].load(Ordering::Relaxed), 1, "index 2 claimed");
    });
}

#[test]
fn stop_flag_halts_the_pool_without_losing_the_error() {
    loom::model(|| {
        // Every index from 8 on fails: whichever worker first leaves the
        // initial two chunks raises stop. The reported error must be the
        // minimum failing index actually claimed — and the claim counts
        // must stay exactly-once even while the pool is being torn down.
        let (claims, slots, err) = run_model(40, 4, |i| i >= 8);
        let e = err.expect("some failing index was claimed");
        assert!(e >= 8, "reported error {e} is a failing index");
        for (i, c) in claims.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            assert!(n <= 1, "index {i} claimed {n} times");
            // A claimed non-failing index must have produced its slot.
            if n == 1 && i < 8 {
                assert_eq!(slots[i], Some(i * 10 + 1), "slot {i}");
            }
        }
        // The minimum failing claim is what the merge reported.
        let min_failed = claims
            .iter()
            .enumerate()
            .filter(|(i, c)| *i >= 8 && c.load(Ordering::Relaxed) == 1)
            .map(|(i, _)| i)
            .min()
            .expect("at least one failing index claimed");
        assert_eq!(e, min_failed);
    });
}
