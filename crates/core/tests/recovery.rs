//! Crash-recovery edge cases for the durable market ledger.
//!
//! Each test builds a real market session against a ledger directory,
//! damages (or doesn't) the on-disk state the way a crash would, and
//! checks that [`Qirana::recover`] rebuilds the broker — bitwise, for
//! every balance — or refuses with the right typed error. The crash-point
//! *matrix* (killing a session at every byte of the log) lives in the
//! workspace-level `tests/crash_matrix.rs`; these are the targeted
//! boundary cases plus a property test over random sessions.

// Test harness: helper fns outside #[test] items still abort on broken
// fixtures by design, like the other integration suites.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use proptest::prelude::*;
use qirana_core::ledger::scan_log;
use qirana_core::{
    ledger, BrokerError, LedgerConfig, LedgerError, LedgerEvent, PricingFunction, Qirana,
    QiranaConfig, SupportConfig,
};
use qirana_sqlengine::{ColumnDef, DataType, Database, TableSchema};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn db() -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Str),
                ColumnDef::new("v", DataType::Int),
            ],
            &["id"],
        ),
        (0..10i64)
            .map(|i| {
                vec![
                    i.into(),
                    ["a", "b", "c"][i as usize % 3].into(),
                    (i * 7 % 13).into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    db
}

fn cfg(function: PricingFunction) -> QiranaConfig {
    QiranaConfig {
        function,
        support: SupportConfig {
            size: 48,
            ..Default::default()
        },
        ..Default::default()
    }
}

const POOL: [&str; 4] = [
    "SELECT v FROM T WHERE v > 4",
    "SELECT grp, count(*) FROM T GROUP BY grp",
    "SELECT sum(v) FROM T",
    "SELECT grp FROM T WHERE v <= 6",
];

/// A fresh, empty market directory unique to this test invocation.
fn market_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("qirana-recovery-{}-{tag}-{n}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every buyer's `(paid, coverage)` as raw bits: the equality we demand
/// of recovery is bitwise, not approximate.
fn state_of(broker: &Qirana) -> BTreeMap<String, (u64, u64)> {
    broker
        .buyer_names()
        .into_iter()
        .map(|name| {
            let paid = broker.buyer_paid(&name).unwrap().to_bits();
            let cov = broker.buyer_coverage(&name).unwrap().to_bits();
            (name, (paid, cov))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Edge case 1: empty log (market opened, nothing ever bought)
// ---------------------------------------------------------------------------

#[test]
fn empty_log_recovers_to_genesis() {
    let dir = market_dir("empty");
    drop(
        Qirana::open(
            db(),
            cfg(PricingFunction::WeightedCoverage),
            LedgerConfig::new(&dir),
        )
        .unwrap(),
    );

    let mut recovered = Qirana::recover(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&dir),
    )
    .unwrap();
    assert!(recovered.buyer_names().is_empty(), "no accounts at genesis");

    // The rebuilt broker prices exactly like a never-persisted one …
    let fresh = Qirana::new(db(), cfg(PricingFunction::WeightedCoverage)).unwrap();
    assert_eq!(
        recovered.quote(POOL[0]).unwrap().to_bits(),
        fresh.quote(POOL[0]).unwrap().to_bits()
    );
    // … and stays durable: new purchases append to the recovered log.
    recovered.buy("alice", POOL[0]).unwrap();
    assert_eq!(recovered.ledger().unwrap().last_seq(), 1);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn never_opened_directory_recovers_to_genesis() {
    // Recovery of a directory with no market at all (no log, no snapshot)
    // is a fresh market, not an error: the log is re-initialized.
    let dir = market_dir("missing");
    let recovered = Qirana::recover(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&dir),
    )
    .unwrap();
    assert!(recovered.buyer_names().is_empty());
    assert_eq!(recovered.ledger().unwrap().next_seq(), 1);
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Edge case 2: snapshot-only (log compacted down to its marker)
// ---------------------------------------------------------------------------

#[test]
fn snapshot_only_log_restores_accounts_and_rows() {
    let dir = market_dir("snaponly");
    let control;
    {
        // Cadence 1: every purchase triggers snapshot + compaction, so on
        // exit the log holds nothing but the latest snapshot marker.
        let ledger_cfg = LedgerConfig::new(&dir).with_snapshot_every(1);
        let mut broker =
            Qirana::open(db(), cfg(PricingFunction::WeightedCoverage), ledger_cfg).unwrap();
        broker.buy("alice", POOL[0]).unwrap();
        broker.buy("alice", POOL[1]).unwrap();
        broker.buy("bob", POOL[2]).unwrap();
        control = state_of(&broker);

        let bytes = fs::read(LedgerConfig::new(&dir).log_path()).unwrap();
        let scan = scan_log(&bytes).unwrap();
        assert_eq!(scan.records.len(), 1, "compaction left only the marker");
        assert!(matches!(
            scan.records[0].event,
            LedgerEvent::SnapshotTaken { .. }
        ));
    }

    let mut recovered = Qirana::recover(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&dir),
    )
    .unwrap();
    assert_eq!(state_of(&recovered), control);
    // History survives: re-buying an owned query is free after recovery.
    assert_eq!(recovered.buy("alice", POOL[0]).unwrap().price, 0.0);
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Edge case 3: trailing torn record (crash mid-append)
// ---------------------------------------------------------------------------

#[test]
fn torn_tail_is_truncated_to_the_last_complete_record() {
    let dir = market_dir("torn");
    let log_path = LedgerConfig::new(&dir).log_path();
    let mid_state;
    {
        let mut broker = Qirana::open(
            db(),
            cfg(PricingFunction::WeightedCoverage),
            LedgerConfig::new(&dir),
        )
        .unwrap();
        broker.buy("alice", POOL[0]).unwrap();
        mid_state = state_of(&broker);
        broker.buy("alice", POOL[1]).unwrap();
    }
    let full = fs::read(&log_path).unwrap();
    let scan = scan_log(&full).unwrap();
    assert_eq!(scan.records.len(), 2);

    // Tear the second record a few bytes into its frame — exactly what a
    // crash mid-`write` leaves behind.
    let cut = scan.records[1].offset as usize + 5;
    fs::write(&log_path, &full[..cut]).unwrap();

    let recovered = Qirana::recover(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&dir),
    )
    .unwrap();
    assert_eq!(
        state_of(&recovered),
        mid_state,
        "recovery keeps the first purchase, drops the torn second"
    );
    // The tail was physically removed, so a second recovery is clean.
    assert_eq!(
        fs::read(&log_path).unwrap().len() as u64,
        scan.records[1].offset
    );
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Edge case 4: checksum corruption mid-log (NOT crash-explicable)
// ---------------------------------------------------------------------------

#[test]
fn corrupted_middle_record_is_a_hard_typed_error() {
    let dir = market_dir("corrupt");
    let log_path = LedgerConfig::new(&dir).log_path();
    {
        let mut broker = Qirana::open(
            db(),
            cfg(PricingFunction::WeightedCoverage),
            LedgerConfig::new(&dir),
        )
        .unwrap();
        broker.buy("alice", POOL[0]).unwrap();
        broker.buy("bob", POOL[1]).unwrap();
    }
    let mut bytes = fs::read(&log_path).unwrap();
    let scan = scan_log(&bytes).unwrap();
    assert_eq!(scan.records.len(), 2);

    // Flip one payload bit of the FIRST record. A later record follows,
    // so no crash explains this: it must be a hard error, never a silent
    // truncation that would forget alice's balance.
    let victim = scan.records[0].offset as usize + 16;
    bytes[victim] ^= 0x40;
    fs::write(&log_path, &bytes).unwrap();

    let err = Qirana::recover(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&dir),
    )
    .unwrap_err();
    match err {
        BrokerError::Ledger(LedgerError::Corrupt { offset, .. }) => {
            assert_eq!(offset, scan.records[0].offset);
        }
        other => panic!("expected LedgerError::Corrupt, got {other}"),
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn tampered_logged_price_is_replay_divergence() {
    // Rewrite a logged purchase with a different price but a *valid*
    // checksum: recovery re-prices the purchase and must notice the
    // logged market lied.
    let dir = market_dir("tamper");
    let log_path = LedgerConfig::new(&dir).log_path();
    {
        let mut broker = Qirana::open(
            db(),
            cfg(PricingFunction::WeightedCoverage),
            LedgerConfig::new(&dir),
        )
        .unwrap();
        broker.buy("alice", POOL[0]).unwrap();
    }
    let bytes = fs::read(&log_path).unwrap();
    let scan = scan_log(&bytes).unwrap();
    let (buyer, sql, price, total_paid) = match &scan.records[0].event {
        LedgerEvent::PurchaseCommitted {
            buyer,
            sql,
            price,
            total_paid,
        } => (buyer.clone(), sql.clone(), *price, *total_paid),
        other => panic!("expected a purchase, got {other:?}"),
    };
    let forged = ledger::encode_record(
        1,
        &LedgerEvent::PurchaseCommitted {
            buyer,
            sql,
            price: price + 1.0,
            total_paid: total_paid + 1.0,
        },
    )
    .unwrap();
    let mut rewritten = bytes[..scan.records[0].offset as usize].to_vec();
    rewritten.extend_from_slice(&forged);
    fs::write(&log_path, &rewritten).unwrap();

    let err = Qirana::recover(
        db(),
        cfg(PricingFunction::WeightedCoverage),
        LedgerConfig::new(&dir),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            BrokerError::Ledger(LedgerError::ReplayDiverged { seq: 1, .. })
        ),
        "expected ReplayDiverged, got {err}"
    );
    fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Property: random sessions recover bitwise-identically at EVERY record
// boundary, for both pricing families.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn every_record_boundary_recovers_bitwise_identically(
        session in prop::collection::vec((0usize..4, any::<bool>()), 1..5),
        entropy in any::<bool>(),
    ) {
        let function = if entropy {
            PricingFunction::ShannonEntropy
        } else {
            PricingFunction::WeightedCoverage
        };
        let dir = market_dir("prop");
        // Checkpoint the control market after every purchase; cadence 0
        // keeps the log a pure WAL so record k ↔ checkpoint k.
        let mut checkpoints = Vec::new();
        {
            let ledger_cfg = LedgerConfig::new(&dir).with_snapshot_every(0);
            let mut broker = Qirana::open(db(), cfg(function), ledger_cfg).unwrap();
            checkpoints.push(state_of(&broker));
            for &(qi, second_buyer) in &session {
                let buyer = if second_buyer { "bob" } else { "alice" };
                broker.buy(buyer, POOL[qi]).unwrap();
                checkpoints.push(state_of(&broker));
            }
        }
        let bytes = fs::read(LedgerConfig::new(&dir).log_path()).unwrap();
        let scan = scan_log(&bytes).unwrap();
        prop_assert_eq!(scan.records.len(), session.len());

        let replay_dir = market_dir("prop-replay");
        let replay_log = LedgerConfig::new(&replay_dir).log_path();
        for (k, expected) in checkpoints.iter().enumerate() {
            let cut = if k == 0 {
                8 // just the magic: a market that crashed before any buy
            } else {
                scan.records[k - 1].end as usize
            };
            fs::write(&replay_log, &bytes[..cut]).unwrap();
            let recovered =
                Qirana::recover(db(), cfg(function), LedgerConfig::new(&replay_dir)).unwrap();
            prop_assert_eq!(
                state_of(&recovered),
                expected.clone(),
                "prefix of {} record(s) diverges ({:?})",
                k,
                function
            );
        }
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&replay_dir).ok();
    }
}
