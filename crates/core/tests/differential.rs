//! Differential tests of the disagreement engine's evaluation strategies.
//!
//! The engine has five ways to compute the same semantics: the naive
//! re-execution loop, the static/dynamic optimized checks (batched and
//! unbatched), the incremental delta evaluator, and the parallel executor
//! layered over each. On randomized databases, support sets, and
//! SPJ/aggregate queries, every strategy must produce *identical*
//! disagreement bits and partition fingerprints — and therefore
//! bitwise-identical prices.

use proptest::prelude::*;
use qirana_core::{
    bundle_disagreements, bundle_partition, generate_support, generate_uniform_worlds,
    prepare_query,
    pricing::{shannon_entropy, weighted_coverage},
    uniform_weights, CacheConfig, EngineOptions, Parallelism, PricingFunction, Qirana,
    QiranaConfig, SupportConfig, SupportSet, SupportUpdate, Telemetry, TestClock,
};
use qirana_sqlengine::{
    ColumnDef, DataType, Database, EngineError, ExecBudget, TableSchema, Value,
};
use std::time::Duration;

const GROUPS: [&str; 3] = ["a", "b", "c"];

/// Builds the two-table database under test: `T(id, grp, v)` and a child
/// relation `U(uid, t_id, w)` for join-shaped queries.
fn build_db(t_rows: &[(u8, i16)], u_rows: &[(u8, i16)]) -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("grp", DataType::Str),
                ColumnDef::new("v", DataType::Int),
            ],
            &["id"],
        ),
        t_rows
            .iter()
            .enumerate()
            .map(|(i, (g, v))| {
                vec![
                    (i as i64).into(),
                    GROUPS[*g as usize % GROUPS.len()].into(),
                    (*v as i64).into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    db.add_table(
        TableSchema::new(
            "U",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("t_id", DataType::Int),
                ColumnDef::new("w", DataType::Int),
            ],
            &["uid"],
        ),
        u_rows
            .iter()
            .enumerate()
            .map(|(i, (t, w))| {
                vec![
                    (i as i64).into(),
                    (*t as i64 % t_rows.len().max(1) as i64).into(),
                    (*w as i64).into(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    db
}

/// The query pool: SPJ, join, and aggregate shapes, parameterized by a
/// random constant so predicates land on both sides of the data.
fn query_pool(c: i16) -> Vec<String> {
    vec![
        format!("SELECT v FROM T WHERE v > {c}"),
        "SELECT grp FROM T".to_string(),
        format!("SELECT count(*) FROM T WHERE v <= {c}"),
        "SELECT grp, count(*), sum(v) FROM T GROUP BY grp".to_string(),
        "SELECT min(v), max(v), avg(v) FROM T".to_string(),
        format!("SELECT T.grp, U.w FROM T, U WHERE T.id = U.t_id AND U.w > {c}"),
        "SELECT T.grp, sum(U.w) FROM T, U WHERE T.id = U.t_id GROUP BY T.grp".to_string(),
    ]
}

const PAR: Parallelism = Parallelism::Threads(4);

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Naive, unbatched-optimized, batched-optimized, and parallel
    /// evaluation all yield identical disagreement bits — and identical
    /// coverage prices, to the last bit of the f64.
    #[test]
    fn all_strategies_agree_on_disagreement_bits(
        t_rows in prop::collection::vec((0u8..3, -40i16..40), 8..20),
        u_rows in prop::collection::vec((any::<u8>(), -40i16..40), 4..12),
        c in -40i16..40,
        seed in any::<u64>(),
        query_idx in 0usize..7,
    ) {
        let mut db = build_db(&t_rows, &u_rows);
        let sql = &query_pool(c)[query_idx];
        let q = prepare_query(&db, sql).unwrap();
        let support = SupportSet::Neighborhood(generate_support(
            &db,
            &SupportConfig { size: 96, seed, ..Default::default() },
        ));

        // `default()` takes the delta path for SPJ/aggregate shapes;
        // `default().with_delta(false)` keeps the batched optimizer
        // covered now that it is no longer the default route.
        let configs = [
            EngineOptions::naive(),
            EngineOptions::no_batching(),
            EngineOptions::default().with_delta(false),
            EngineOptions::default(),
            EngineOptions::naive().with_parallelism(PAR),
            EngineOptions::no_batching().with_parallelism(PAR),
            EngineOptions::default().with_delta(false).with_parallelism(PAR),
            EngineOptions::default().with_parallelism(PAR),
        ];
        let reference =
            bundle_disagreements(&mut db, &[&q], &support, &configs[0], None).unwrap();
        let weights = uniform_weights(support.len(), 100.0);
        let ref_price = weighted_coverage(&weights, &reference);
        for opts in &configs[1..] {
            let bits = bundle_disagreements(&mut db, &[&q], &support, opts, None).unwrap();
            prop_assert_eq!(&bits, &reference, "bits diverge for {} under {:?}", sql, opts);
            prop_assert_eq!(
                weighted_coverage(&weights, &bits).to_bits(),
                ref_price.to_bits(),
                "price diverges for {}", sql
            );
        }
    }

    /// Sequential and parallel partition refinement produce identical
    /// fingerprint vectors, hence bitwise-identical entropy prices.
    #[test]
    fn parallel_partition_is_bitwise_identical(
        t_rows in prop::collection::vec((0u8..3, -40i16..40), 8..20),
        u_rows in prop::collection::vec((any::<u8>(), -40i16..40), 4..12),
        c in -40i16..40,
        seed in any::<u64>(),
        query_idx in 0usize..7,
    ) {
        let mut db = build_db(&t_rows, &u_rows);
        let sql = &query_pool(c)[query_idx];
        let q = prepare_query(&db, sql).unwrap();
        let support = SupportSet::Neighborhood(generate_support(
            &db,
            &SupportConfig { size: 96, seed, ..Default::default() },
        ));

        // Full execution (delta off) is the reference; the delta path must
        // reproduce it bitwise, sequentially and in parallel.
        let full = bundle_partition(
            &mut db,
            &[&q],
            &support,
            &EngineOptions::default().with_delta(false),
        )
        .unwrap();
        let seq =
            bundle_partition(&mut db, &[&q], &support, &EngineOptions::default()).unwrap();
        prop_assert_eq!(&seq, &full, "delta partition diverges for {}", sql);
        let par = bundle_partition(
            &mut db,
            &[&q],
            &support,
            &EngineOptions::default().with_parallelism(PAR),
        )
        .unwrap();
        prop_assert_eq!(&seq, &par, "partition diverges for {}", sql);

        let weights = uniform_weights(support.len(), 100.0);
        prop_assert_eq!(
            shannon_entropy(100.0, &weights, &seq).to_bits(),
            shannon_entropy(100.0, &weights, &par).to_bits()
        );
    }

    /// Incremental history-aware pricing: over a random purchase session
    /// (repeats included), brokers with the pricing cache on and off — and
    /// under sequential and parallel executors — charge bitwise-identical
    /// prices at every step, for both pricing families. The cached broker
    /// must actually exercise the memo (hits > 0 whenever the session
    /// repeats a query).
    #[test]
    fn cached_and_uncached_sessions_are_bitwise_identical(
        t_rows in prop::collection::vec((0u8..3, -40i16..40), 8..16),
        u_rows in prop::collection::vec((any::<u8>(), -40i16..40), 4..10),
        c in -40i16..40,
        seed in any::<u64>(),
        session in prop::collection::vec(0usize..7, 1..6),
        entropy in any::<bool>(),
    ) {
        let function = if entropy {
            PricingFunction::ShannonEntropy
        } else {
            PricingFunction::WeightedCoverage
        };
        let pool = query_pool(c);
        let broker = |cache: CacheConfig, parallelism: Parallelism| {
            Qirana::new(
                build_db(&t_rows, &u_rows),
                QiranaConfig {
                    function,
                    support: SupportConfig { size: 96, seed, ..Default::default() },
                    engine: EngineOptions::default()
                        .with_cache(cache)
                        .with_parallelism(parallelism),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let mut variants = [
            broker(CacheConfig::default(), Parallelism::Sequential),
            broker(CacheConfig::disabled(), Parallelism::Sequential),
            broker(CacheConfig::default(), PAR),
            broker(CacheConfig::disabled(), PAR),
        ];
        for &idx in &session {
            let sql = &pool[idx];
            let reference = variants[0].buy("p", sql).unwrap();
            for (v, variant) in variants.iter_mut().enumerate().skip(1) {
                let got = variant.buy("p", sql).unwrap();
                prop_assert_eq!(
                    got.price.to_bits(),
                    reference.price.to_bits(),
                    "variant {} diverges on {} ({:?})", v, sql, function
                );
                prop_assert_eq!(got.total_paid.to_bits(), reference.total_paid.to_bits());
            }
        }
        let repeats = session.len()
            != session.iter().collect::<std::collections::HashSet<_>>().len();
        if repeats {
            prop_assert!(variants[0].cache_stats().hits > 0, "repeat session must hit");
        }
        prop_assert_eq!(variants[1].cache_stats().hits, 0, "disabled cache never hits");
    }

    /// The incremental delta evaluator is observationally identical to full
    /// re-execution: over a random purchase session, brokers with the delta
    /// path on and off — crossed with sequential/parallel executors, with the
    /// pricing cache enabled so delta state is built once and reused — charge
    /// bitwise-identical prices at every step, for both pricing families.
    #[test]
    fn delta_and_full_sessions_are_bitwise_identical(
        t_rows in prop::collection::vec((0u8..3, -40i16..40), 8..16),
        u_rows in prop::collection::vec((any::<u8>(), -40i16..40), 4..10),
        c in -40i16..40,
        seed in any::<u64>(),
        session in prop::collection::vec(0usize..7, 1..6),
        entropy in any::<bool>(),
    ) {
        let function = if entropy {
            PricingFunction::ShannonEntropy
        } else {
            PricingFunction::WeightedCoverage
        };
        let pool = query_pool(c);
        let broker = |delta: bool, parallelism: Parallelism| {
            Qirana::new(
                build_db(&t_rows, &u_rows),
                QiranaConfig {
                    function,
                    support: SupportConfig { size: 96, seed, ..Default::default() },
                    engine: EngineOptions::default()
                        .with_delta(delta)
                        .with_parallelism(parallelism),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let mut variants = [
            broker(false, Parallelism::Sequential),
            broker(true, Parallelism::Sequential),
            broker(false, PAR),
            broker(true, PAR),
        ];
        for &idx in &session {
            let sql = &pool[idx];
            let reference = variants[0].buy("p", sql).unwrap();
            for (v, variant) in variants.iter_mut().enumerate().skip(1) {
                let got = variant.buy("p", sql).unwrap();
                prop_assert_eq!(
                    got.price.to_bits(),
                    reference.price.to_bits(),
                    "delta variant {} diverges on {} ({:?})", v, sql, function
                );
                prop_assert_eq!(got.total_paid.to_bits(), reference.total_paid.to_bits());
            }
        }
    }

    /// Telemetry is observationally free: with tracing and metrics enabled
    /// versus disabled, under the sequential and the parallel executor, a
    /// purchase session charges bitwise-identical prices for both pricing
    /// families — and the deterministic engine counters
    /// (`neighbors_evaluated_total`, `disagreements_found_total`) agree
    /// between the sequential and parallel instrumented runs, so the
    /// telemetry itself is reproducible, not just harmless.
    #[test]
    fn telemetry_on_off_sessions_are_bitwise_identical(
        t_rows in prop::collection::vec((0u8..3, -40i16..40), 8..16),
        u_rows in prop::collection::vec((any::<u8>(), -40i16..40), 4..10),
        c in -40i16..40,
        seed in any::<u64>(),
        session in prop::collection::vec(0usize..7, 1..5),
        entropy in any::<bool>(),
    ) {
        let function = if entropy {
            PricingFunction::ShannonEntropy
        } else {
            PricingFunction::WeightedCoverage
        };
        let pool = query_pool(c);
        let broker = |telemetry: Telemetry, parallelism: Parallelism| {
            Qirana::new(
                build_db(&t_rows, &u_rows),
                QiranaConfig {
                    function,
                    support: SupportConfig { size: 96, seed, ..Default::default() },
                    engine: EngineOptions::default()
                        .with_telemetry(telemetry)
                        .with_parallelism(parallelism),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let seq_tel = Telemetry::with_clock(Box::new(TestClock::stepping(10)));
        let par_tel = Telemetry::with_clock(Box::new(TestClock::stepping(10)));
        let mut variants = [
            broker(Telemetry::disabled(), Parallelism::Sequential),
            broker(seq_tel.clone(), Parallelism::Sequential),
            broker(Telemetry::disabled(), PAR),
            broker(par_tel.clone(), PAR),
        ];
        for &idx in &session {
            let sql = &pool[idx];
            let reference = variants[0].buy("p", sql).unwrap();
            for (v, variant) in variants.iter_mut().enumerate().skip(1) {
                let got = variant.buy("p", sql).unwrap();
                prop_assert_eq!(
                    got.price.to_bits(),
                    reference.price.to_bits(),
                    "variant {} diverges on {} ({:?})", v, sql, function
                );
                prop_assert_eq!(got.total_paid.to_bits(), reference.total_paid.to_bits());
            }
        }
        // The instrumented runs recorded real work...
        let seq_sink = seq_tel.sink().unwrap();
        let par_sink = par_tel.sink().unwrap();
        prop_assert_eq!(seq_sink.counter("purchases_total"), session.len() as u64);
        prop_assert!(!seq_sink.spans().is_empty(), "enabled run must record spans");
        // ...and the work counters are themselves deterministic: the
        // parallel executor evaluates exactly the same neighbors and finds
        // exactly the same disagreements as the sequential one.
        for counter in ["neighbors_evaluated_total", "disagreements_found_total"] {
            prop_assert_eq!(
                seq_sink.counter(counter),
                par_sink.counter(counter),
                "{} differs between sequential and parallel runs", counter
            );
        }
    }

    /// Uniform-world supports: the read-only shared-reference parallel path
    /// agrees with the sequential loop.
    #[test]
    fn parallel_uniform_worlds_agree(
        t_rows in prop::collection::vec((0u8..3, -40i16..40), 8..16),
        seed in any::<u64>(),
        query_idx in 0usize..5,
    ) {
        let mut db = build_db(&t_rows, &[]);
        let sql = &query_pool(0)[query_idx];
        let q = prepare_query(&db, sql).unwrap();
        let support = SupportSet::Uniform(generate_uniform_worlds(&db, 80, seed));

        let seq = bundle_disagreements(
            &mut db, &[&q], &support, &EngineOptions::default(), None,
        ).unwrap();
        let par = bundle_disagreements(
            &mut db, &[&q], &support, &EngineOptions::default().with_parallelism(PAR), None,
        ).unwrap();
        prop_assert_eq!(seq, par, "uniform bits diverge for {}", sql);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The quote path is `&self`: N sessions quoting the same broker
    /// concurrently (shared reference, no external locking) must price
    /// bitwise-identically to quoting sequentially — for both pricing
    /// families, with the pricing cache populated and disabled. Cached
    /// quotes run as generation-checked peeks and misses price on pooled
    /// scratch databases, so any shared mutable state leaking between
    /// concurrent sessions shows up here as a flipped bit. Quotes must
    /// also leave no trace: the memo's entry count is unchanged after
    /// the concurrent burst.
    #[test]
    fn concurrent_quote_sessions_match_sequential_bitwise(
        t_rows in prop::collection::vec((0u8..3, -40i16..40), 8..16),
        u_rows in prop::collection::vec((any::<u8>(), -40i16..40), 4..10),
        c in -40i16..40,
        seed in any::<u64>(),
        entropy in any::<bool>(),
        cached in any::<bool>(),
    ) {
        let function = if entropy {
            PricingFunction::ShannonEntropy
        } else {
            PricingFunction::WeightedCoverage
        };
        let cache = if cached { CacheConfig::default() } else { CacheConfig::disabled() };
        let pool = query_pool(c);
        let mut broker = Qirana::new(
            build_db(&t_rows, &u_rows),
            QiranaConfig {
                function,
                support: SupportConfig { size: 96, seed, ..Default::default() },
                engine: EngineOptions::default().with_cache(cache),
                ..Default::default()
            },
        )
        .unwrap();
        // Warm the memo through buys (quotes are peek-only and never
        // insert), so the cached runs exercise concurrent hits as well
        // as concurrent misses.
        for sql in pool.iter().step_by(2) {
            broker.buy("warm", sql).unwrap();
        }
        let broker = broker; // frozen: everything below is `&self`

        let sequential: Vec<u64> = pool
            .iter()
            .map(|sql| broker.quote(sql).unwrap().to_bits())
            .collect();
        let entries_before = broker.cache_len();

        const SESSIONS: usize = 4;
        let concurrent: Vec<Vec<(usize, u64)>> = std::thread::scope(|scope| {
            let broker = &broker;
            let pool = &pool;
            let handles: Vec<_> = (0..SESSIONS)
                .map(|t| {
                    scope.spawn(move || {
                        // Each session walks the pool from its own
                        // offset, so hits and misses interleave across
                        // sessions instead of marching in lockstep.
                        (0..pool.len())
                            .map(|j| {
                                let idx = (t + j) % pool.len();
                                (idx, broker.quote(&pool[idx]).unwrap().to_bits())
                            })
                            .collect::<Vec<(usize, u64)>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (session, results) in concurrent.iter().enumerate() {
            for &(idx, bits) in results {
                prop_assert_eq!(
                    bits,
                    sequential[idx],
                    "session {} diverged from sequential on {} ({:?}, cached={})",
                    session, pool[idx], function, cached
                );
            }
        }
        prop_assert_eq!(
            broker.cache_len(),
            entries_before,
            "concurrent quotes must not populate or evict the memo"
        );
    }
}

// ---------------------------------------------------------------------------
// Regressions
// ---------------------------------------------------------------------------

/// Regression: integers beyond 2^53 used to be fingerprinted through a
/// lossy f64 cast, so a support update swapping `2^53` for `2^53 + 1`
/// produced an identical result fingerprint — the engine saw no
/// disagreement and the buyer got that bit of information for free.
#[test]
fn pricing_detects_update_between_adjacent_large_ints() {
    const BIG: i64 = 1 << 53;
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "T",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Int),
            ],
            &["id"],
        ),
        (0..4i64)
            .map(|i| vec![i.into(), BIG.into()])
            .collect::<Vec<_>>(),
    );
    let q = prepare_query(&db, "SELECT v FROM T").unwrap();
    let support = SupportSet::Neighborhood(vec![SupportUpdate::Row {
        table: 0,
        row: 1,
        changes: vec![(1, Value::Int(BIG + 1))],
    }]);
    for opts in [EngineOptions::naive(), EngineOptions::default()] {
        let bits = bundle_disagreements(&mut db, &[&q], &support, &opts, None).unwrap();
        assert_eq!(
            bits,
            vec![true],
            "2^53 -> 2^53+1 must be a visible disagreement ({opts:?})"
        );
    }
}

/// An expired execution budget must surface as `BudgetExceeded` through the
/// parallel fan-out, not hang, panic, or report partial bits.
#[test]
fn budget_trip_propagates_through_parallel_path() {
    let t_rows: Vec<(u8, i16)> = (0..16).map(|i| (i as u8, i as i16)).collect();
    let mut db = build_db(&t_rows, &[]);
    let q = prepare_query(&db, "SELECT grp, sum(v) FROM T GROUP BY grp").unwrap();
    let support = SupportSet::Neighborhood(generate_support(
        &db,
        &SupportConfig {
            size: 200,
            ..Default::default()
        },
    ));
    let opts = EngineOptions::naive()
        .with_parallelism(PAR)
        .with_budget(ExecBudget::default().with_timeout(Duration::ZERO));
    let err = bundle_disagreements(&mut db, &[&q], &support, &opts, None).unwrap_err();
    assert!(
        matches!(err, EngineError::BudgetExceeded { .. }),
        "expected BudgetExceeded, got {err:?}"
    );
}
