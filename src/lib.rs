//! # qirana
//!
//! A complete Rust implementation of **QIRANA: A Framework for Scalable
//! Query Pricing** (Shaleen Deep & Paraschos Koutris, SIGMOD 2017) — an
//! arbitrage-free, query-based data-pricing broker, together with every
//! substrate it runs on:
//!
//! * [`sqlengine`] — a from-scratch in-memory SQL engine (the paper's MySQL
//!   substrate) with pricing-specific table overrides and open plans;
//! * [`solver`] — a max-entropy convex solver (the paper's CVXPY + SCS);
//! * [`datagen`] — deterministic generators for the five evaluation
//!   datasets (world, US car crash, DBLP, TPC-H, SSB) and their query
//!   workloads;
//! * [`core`] — the pricing framework itself: support sets, four
//!   arbitrage-free pricing functions, seller price points, history-aware
//!   accounts, and the §4 disagreement optimizer.
//!
//! The most common entry points are re-exported at the crate root:
//!
//! ```
//! use qirana::{Qirana, QiranaConfig, SupportConfig};
//!
//! let db = qirana::datagen::world::generate(42);
//! let mut broker = Qirana::new(
//!     db,
//!     QiranaConfig {
//!         total_price: 100.0,
//!         support: SupportConfig { size: 200, ..Default::default() },
//!         ..Default::default()
//!     },
//! )
//! .unwrap();
//! let price = broker
//!     .quote("SELECT Name FROM Country WHERE Continent = 'Asia'")
//!     .unwrap();
//! assert!(price > 0.0 && price < 100.0);
//! ```
//!
//! See `README.md` for an architecture overview, `DESIGN.md` for the
//! paper-to-module map, and `EXPERIMENTS.md` for the reproduced evaluation.

pub use qirana_core as core;
pub use qirana_datagen as datagen;
pub use qirana_solver as solver;
pub use qirana_sqlengine as sqlengine;

pub use qirana_core::{
    BrokerError, CacheConfig, CacheStats, EngineOptions, FsyncPolicy, Ledger, LedgerConfig,
    LedgerError, LedgerEvent, Parallelism, PricePoint, PricingFunction, Purchase, Qirana,
    QiranaConfig, Quote, RetryPolicy, SupportConfig, SupportType, Telemetry, TelemetrySink,
};
pub use qirana_sqlengine::{Database, ExecBudget, QueryOutput, Value};
