//! A realistic data-market session: an insurance analyst explores the US
//! car-crash dataset query by query, paying only for new information —
//! the history-aware workflow of §3.5 on one of the paper's real-world
//! datasets (Table 3).
//!
//! Run with: `cargo run --example analyst_session --release`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::datagen::{carcrash, queries::CARCRASH_QUERIES};
use qirana::{Qirana, QiranaConfig, SupportConfig};

fn main() {
    // A scaled car-crash instance (the original has 71 115 rows; the shape
    // of prices is the same at 8 000 — see EXPERIMENTS.md).
    let db = carcrash::generate(8_000, 2011);
    let mut broker = Qirana::new(
        db,
        QiranaConfig {
            total_price: 100.0,
            support: SupportConfig {
                size: 2_000,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("broker");

    println!("== crash-data analyst session ==");
    println!(
        "dataset price: $100.00, support set: {}\n",
        broker.support_size()
    );

    let narrative = [
        "state-by-state crash counts",
        "alcohol-involved male crashes in Texas",
        "H1 fatality total in California",
        "fatal crashes in Wisconsin snow",
    ];

    let mut oblivious_total = 0.0;
    for (label, sql) in narrative.iter().zip(CARCRASH_QUERIES) {
        let quote = broker.quote(sql).expect("quote");
        oblivious_total += quote;
        let purchase = broker.buy("analyst", sql).expect("buy");
        println!("{label}");
        println!(
            "    quote ${quote:>6.2}   charged ${:>6.2}   running total ${:>6.2}",
            purchase.price, purchase.total_paid
        );
        // Show a sample of the answer.
        for row in purchase.output.rows.iter().take(3) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("      {}", cells.join(" | "));
        }
        if purchase.output.rows.len() > 3 {
            println!("      ... {} more rows", purchase.output.rows.len() - 3);
        }
        println!();
    }

    // Re-running the whole workload is free: the analyst already owns it.
    let mut rerun = 0.0;
    for sql in CARCRASH_QUERIES {
        rerun += broker.buy("analyst", sql).expect("rebuy").price;
    }

    println!("history-oblivious sum of quotes : ${oblivious_total:>7.2}");
    println!(
        "history-aware session total     : ${:>7.2}",
        broker.buyer_paid("analyst").unwrap_or(0.0)
    );
    println!("re-running the workload costs   : ${rerun:>7.2}");
    assert!(broker.buyer_paid("analyst").unwrap_or(0.0) <= oblivious_total + 1e-9);
    assert_eq!(rerun, 0.0);
}
