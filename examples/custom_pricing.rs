//! Seller-side price customization (§3.3): relation- and attribute-level
//! price points enforced through entropy-maximization weight assignment,
//! plus what happens when the seller asks for the impossible.
//!
//! Run with: `cargo run --example custom_pricing`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::datagen::world;
use qirana::{BrokerError, PricePoint, Qirana, QiranaConfig, SupportConfig};

fn main() {
    let db = world::generate(7);

    // The seller: whole dataset $100, but Country is the crown jewel at
    // $70, and within it the Population column alone is worth $25.
    let cfg = QiranaConfig {
        total_price: 100.0,
        support: SupportConfig {
            size: 3_000,
            ..Default::default()
        },
        price_points: vec![
            PricePoint::new("SELECT * FROM Country", 70.0),
            PricePoint::new("SELECT ID, Population FROM Country", 25.0),
        ],
        ..Default::default()
    };
    let broker = Qirana::new(db.clone(), cfg).expect("feasible price points");

    println!("== seller-customized prices ==\n");
    for sql in [
        "SELECT * FROM Country",
        "SELECT ID, Population FROM Country",
        "SELECT ID, Name FROM Country",
        "SELECT * FROM City",
        "SELECT * FROM CountryLanguage",
    ] {
        let p = broker.quote(sql).expect("quote");
        println!("${p:>6.2}  {sql}");
    }
    let all = broker
        .quote_bundle(&[
            "SELECT * FROM Country",
            "SELECT * FROM City",
            "SELECT * FROM CountryLanguage",
        ])
        .unwrap();
    println!("${all:>6.2}  <entire dataset>");
    assert!((all - 100.0).abs() < 1e-3);

    // The enforced points bind exactly.
    let country = broker.quote("SELECT * FROM Country").unwrap();
    assert!(
        (country - 70.0).abs() < 1e-3,
        "Country point binds: {country}"
    );
    let pop = broker.quote("SELECT ID, Population FROM Country").unwrap();
    assert!((pop - 25.0).abs() < 1e-3, "Population point binds: {pop}");

    // An infeasible specification — a subset priced above the whole — is
    // rejected with a diagnosis instead of silently mispricing.
    println!("\n== infeasible specification ==\n");
    let bad = QiranaConfig {
        total_price: 100.0,
        support: SupportConfig {
            size: 500,
            ..Default::default()
        },
        price_points: vec![PricePoint::new("SELECT * FROM Country", 170.0)],
        ..Default::default()
    };
    match Qirana::new(db, bad) {
        Err(BrokerError::Weights(e)) => println!("rejected as expected: {e}"),
        Err(other) => panic!("unexpected error: {other}"),
        Ok(_) => panic!("a $170 subset of a $100 dataset must be infeasible"),
    }
}
