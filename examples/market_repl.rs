//! An interactive data-market shell: the closest thing to "deploying"
//! QIRANA as the broker layer of Figure 3. Loads one of the bundled
//! datasets, then reads commands from stdin:
//!
//! ```text
//! quote <sql>      price a query without buying (history-oblivious)
//! buy <sql>        history-aware purchase: pay for new information, see rows
//! answer <sql>     run a query without pricing (seller-side debugging)
//! balance          cumulative spend and dataset coverage
//! :metrics         dump the telemetry registry (Prometheus text format)
//! :flame           dump collapsed stacks (pipe to flamegraph.pl / speedscope)
//! help | quit
//! ```
//!
//! Run with, e.g.:
//! `cargo run --release --example market_repl -- world`
//! `cargo run --release --example market_repl -- carcrash` (or `dblp`, `ssb`, `tpch`)
//!
//! Pipe a script: `echo 'buy SELECT * FROM Country' | cargo run --release --example market_repl -- world`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::datagen::{carcrash, dblp, ssb, tpch, world};
use qirana::{EngineOptions, Qirana, QiranaConfig, SupportConfig, Telemetry};
use std::io::{self, BufRead, Write};

fn load(name: &str) -> Option<qirana::Database> {
    Some(match name {
        "world" => world::generate(42),
        "carcrash" => carcrash::generate(10_000, 42),
        "dblp" => dblp::generate(5_000, 42),
        "ssb" => ssb::generate(0.002, 42),
        "tpch" => tpch::generate(0.002, 42),
        _ => return None,
    })
}

fn main() {
    let dataset = std::env::args().nth(1).unwrap_or_else(|| "world".into());
    let Some(db) = load(&dataset) else {
        eprintln!("unknown dataset {dataset}; choose world|carcrash|dblp|ssb|tpch");
        std::process::exit(1);
    };
    let tables: Vec<String> = db
        .tables()
        .iter()
        .map(|t| format!("{}({} rows)", t.schema.name, t.len()))
        .collect();

    println!("loading {dataset} and building the support set...");
    let telemetry = Telemetry::enabled();
    let mut broker = Qirana::new(
        db,
        QiranaConfig {
            total_price: 100.0,
            support: SupportConfig {
                size: 2_000,
                ..Default::default()
            },
            engine: EngineOptions::default().with_telemetry(telemetry.clone()),
            ..Default::default()
        },
    )
    .expect("broker construction");

    println!(
        "qirana market — dataset '{dataset}' [{}], full price $100.00, support {}",
        tables.join(", "),
        broker.support_size()
    );
    println!(
        "commands: quote <sql> | buy <sql> | answer <sql> | balance | :metrics | :flame | quit"
    );

    let stdin = io::stdin();
    let buyer = "you";
    loop {
        print!("qirana> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd.to_ascii_lowercase().as_str() {
            "quit" | "exit" => break,
            "help" => {
                println!(
                    "quote <sql> | buy <sql> | answer <sql> | balance | :metrics | :flame | quit"
                )
            }
            ":metrics" => {
                let sink = telemetry.sink().expect("repl telemetry is enabled");
                print!("{}", sink.prometheus_text());
            }
            ":flame" => {
                let sink = telemetry.sink().expect("repl telemetry is enabled");
                let stacks = sink.collapsed_stacks();
                if stacks.is_empty() {
                    println!("(no spans recorded yet — quote or buy something first)");
                } else {
                    print!("{stacks}");
                }
            }
            "balance" => {
                println!(
                    "spent ${:.2}; coverage {:.1}% of the dataset's information",
                    broker.buyer_paid(buyer).unwrap_or(0.0),
                    broker.buyer_coverage(buyer).unwrap_or(0.0) * 100.0
                );
            }
            "quote" => match broker.quote(rest) {
                Ok(p) => println!("price: ${p:.2}"),
                Err(e) => println!("error: {e}"),
            },
            "answer" => match broker.answer(rest) {
                Ok(out) => print_rows(&out),
                Err(e) => println!("error: {e}"),
            },
            "buy" => match broker.buy(buyer, rest) {
                Ok(p) => {
                    println!(
                        "charged ${:.2} (total ${:.2}, coverage {:.1}%)",
                        p.price,
                        p.total_paid,
                        broker.buyer_coverage(buyer).unwrap_or(0.0) * 100.0
                    );
                    print_rows(&p.output);
                }
                Err(e) => println!("error: {e}"),
            },
            _ => println!("unknown command {cmd:?}; try help"),
        }
    }
    println!(
        "\nsession total: ${:.2} — thanks for trading.",
        broker.buyer_paid(buyer).unwrap_or(0.0)
    );
}

fn print_rows(out: &qirana::QueryOutput) {
    println!("  {}", out.columns.join(" | "));
    for row in out.rows.iter().take(10) {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
    if out.rows.len() > 10 {
        println!("  ... {} more rows", out.rows.len() - 10);
    }
}
