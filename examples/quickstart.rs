//! Quickstart: stand up a QIRANA broker over a small database, price some
//! queries, and observe the arbitrage-freeness guarantees.
//!
//! Run with: `cargo run --example quickstart`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::sqlengine::{ColumnDef, DataType, Database, TableSchema};
use qirana::{Qirana, QiranaConfig, SupportConfig};

fn main() {
    // 1. The dataset for sale: the paper's running-example Twitter database.
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "User",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("gender", DataType::Str),
                ColumnDef::new("age", DataType::Int),
            ],
            &["uid"],
        ),
        vec![
            vec![1.into(), "John".into(), "m".into(), 25.into()],
            vec![2.into(), "Alice".into(), "f".into(), 13.into()],
            vec![3.into(), "Bob".into(), "m".into(), 45.into()],
            vec![4.into(), "Anna".into(), "f".into(), 19.into()],
        ],
    );
    db.add_table(
        TableSchema::new(
            "Tweet",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("time", DataType::Str),
                ColumnDef::new("location", DataType::Str),
            ],
            &["tid"],
        ),
        vec![
            vec![1.into(), 3.into(), "23:29".into(), "CA".into()],
            vec![2.into(), 3.into(), "23:29".into(), "WA".into()],
            vec![3.into(), 1.into(), "23:30".into(), "OR".into()],
            vec![4.into(), 2.into(), "23:31".into(), "CA".into()],
        ],
    );

    // 2. The seller prices the whole dataset at $100; QIRANA derives
    //    fine-grained query prices from that single number.
    let broker = Qirana::new(
        db,
        QiranaConfig {
            total_price: 100.0,
            support: SupportConfig {
                size: 1000,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("broker setup");

    println!(
        "support set: {} neighboring instances\n",
        broker.support_size()
    );

    // 3. Price a few queries (history-oblivious quotes).
    let queries = [
        "SELECT count(*) FROM User WHERE gender = 'f'",
        "SELECT gender, count(*) FROM User GROUP BY gender",
        "SELECT AVG(age) FROM User",
        "SELECT * FROM User",
        "SELECT * FROM Tweet WHERE location = 'CA'",
    ];
    for sql in queries {
        let price = broker.quote(sql).expect("pricing");
        println!("${price:>6.2}  {sql}");
    }

    // 4. The whole dataset prices at exactly the seller's total.
    let all = broker
        .quote_bundle(&["SELECT * FROM User", "SELECT * FROM Tweet"])
        .expect("pricing");
    println!("${all:>6.2}  <the entire dataset>\n");

    // 5. No information arbitrage: the group-by query determines the
    //    filtered count, so it can never be cheaper.
    let q1 = broker
        .quote("SELECT count(*) FROM User WHERE gender = 'f'")
        .unwrap();
    let q2 = broker
        .quote("SELECT gender, count(*) FROM User GROUP BY gender")
        .unwrap();
    println!(
        "arbitrage check: p(Q1) = {q1:.2} <= p(Q2) = {q2:.2}: {}",
        q1 <= q2
    );
    assert!(q1 <= q2 + 1e-9);
}
