//! The paper's Example 1.1, end to end: Alice the analyst buys a sequence
//! of queries from a Twitter-like dataset with history-aware pricing, and
//! every arbitrage trap from the introduction is shown to be closed.
//!
//! Run with: `cargo run --example twitter_market`

// CLI/bench/demo target: aborting with a clear message on bad input or a
// broken fixture is the intended failure mode here, unlike in the library
// crates where the workspace lints deny panicking calls.
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use qirana::sqlengine::{ColumnDef, DataType, Database, TableSchema};
use qirana::{Qirana, QiranaConfig, SupportConfig};

fn db() -> Database {
    let mut db = Database::new();
    db.add_table(
        TableSchema::new(
            "User",
            vec![
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("gender", DataType::Str),
                ColumnDef::new("age", DataType::Int),
            ],
            &["uid"],
        ),
        vec![
            vec![1.into(), "John".into(), "m".into(), 25.into()],
            vec![2.into(), "Alice".into(), "f".into(), 13.into()],
            vec![3.into(), "Bob".into(), "m".into(), 45.into()],
            vec![4.into(), "Anna".into(), "f".into(), 19.into()],
        ],
    );
    db.add_table(
        TableSchema::new(
            "Tweet",
            vec![
                ColumnDef::new("tid", DataType::Int),
                ColumnDef::new("uid", DataType::Int),
                ColumnDef::new("location", DataType::Str),
            ],
            &["tid"],
        ),
        vec![
            vec![1.into(), 3.into(), "CA".into()],
            vec![2.into(), 3.into(), "WA".into()],
            vec![3.into(), 1.into(), "OR".into()],
            vec![4.into(), 2.into(), "CA".into()],
        ],
    );
    db
}

fn main() {
    let mut broker = Qirana::new(
        db(),
        QiranaConfig {
            total_price: 100.0,
            support: SupportConfig {
                size: 2000,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("broker");

    println!("== Alice's analytics session (history-aware) ==\n");

    // Q1 vs Q2: the group-by reveals a superset of the filtered count, so
    // QIRANA prices p(Q1) <= p(Q2) — no arbitrage by asking the "bigger"
    // query instead.
    let q1 = "SELECT count(*) FROM User WHERE gender = 'f'";
    let q2 = "SELECT gender, count(*) FROM User GROUP BY gender";
    {
        // Quote both before buying anything.
        let p1 = broker.quote(q1).unwrap();
        let p2 = broker.quote(q2).unwrap();
        println!("quote  Q1 (female count)      : ${p1:.2}");
        println!("quote  Q2 (counts by gender)  : ${p2:.2}");
        assert!(p1 <= p2 + 1e-9, "information arbitrage!");
    }

    // Alice buys Q2.
    let p = broker.buy("alice", q2).unwrap();
    println!(
        "\nalice buys Q2 for ${:.2} (total ${:.2})",
        p.price, p.total_paid
    );
    for row in &p.output.rows {
        println!("    {} -> {}", row[0], row[1]);
    }

    // Q3 = AVG(age) must not exceed p(Q2) + p(Q4): AVG is derivable from
    // SUM and the count Alice already has.
    let q3 = "SELECT AVG(age) FROM User";
    let q4 = "SELECT SUM(age) FROM User";
    {
        let p3 = broker.quote(q3).unwrap();
        let p4 = broker.quote(q4).unwrap();
        let p2 = broker.quote(q2).unwrap();
        println!("\nquote  Q3 (avg age) : ${p3:.2}");
        println!("quote  Q4 (sum age) : ${p4:.2}");
        assert!(p3 <= p2 + p4 + 1e-9, "bundle arbitrage!");
        println!("bundle check: p(Q3) <= p(Q2) + p(Q4) holds");
    }

    // Alice buys Q3; because she owns Q2 already, the history-aware price
    // only charges the *new* information.
    let p = broker.buy("alice", q3).unwrap();
    println!(
        "\nalice buys Q3 for ${:.2} (total ${:.2})",
        p.price, p.total_paid
    );

    // Q5 (male count) is fully determined by Q2 — free under history-aware
    // pricing, exactly the last step of Example 1.1.
    let q5 = "SELECT count(*) FROM User WHERE gender = 'm'";
    let p = broker.buy("alice", q5).unwrap();
    println!(
        "alice buys Q5 for ${:.2} (already determined by Q2)",
        p.price
    );
    assert_eq!(p.price, 0.0);

    // A fresh buyer pays full freight for the same query.
    let p = broker.buy("mallory", q5).unwrap();
    println!(
        "\nmallory (no history) pays ${:.2} for the same Q5",
        p.price
    );
    assert!(p.price > 0.0);

    println!(
        "\nalice total: ${:.2}; coverage of the dataset: {:.1}%",
        broker.buyer_paid("alice").unwrap_or(0.0),
        broker.buyer_coverage("alice").unwrap_or(0.0) * 100.0
    );
}
